"""Compiled netlist simulation engine (lower once, execute fast, batch wide).

The interpreted simulation loop walks every wire and component object
once per clock cycle and allocates fresh ``ActivityEvent``/``Channel``
objects per cycle just to bucket toggle counts.  The compiled engine
instead *lowers* a validated :class:`~repro.hdl.netlist.Netlist` once
and then executes a flat program:

1. **Lowering** (:func:`compile_netlist`) — every wire gets a dense
   index and every component is translated into straight-line Python
   statements over local integer variables: ROMs, transition tables and
   (small) lookup logic become tuple indexing, Gray decode becomes an
   unrolled shift/XOR ladder, register capture/commit becomes a block of
   simultaneous assignments.  The statements are assembled in the
   netlist's topological order into one specialised step loop, compiled
   a single time with :func:`exec`.  Lowering also *partitions* the op
   list for the vectorised tier (:func:`_vector_partition`): the
   **sequential residue** — registers on feedback cycles, transition
   tables, ports and every op feeding them — versus the **feed-forward
   slices** whose inputs are residue wires, peeled pipeline registers
   or constants, each slice mapped to a cycle-axis numpy kernel.
2. **Execution, scalar tier** — the generated runner advances the
   whole design one clock per iteration, appending one settled
   wire-value row per cycle.  Netlists without input ports are pure
   functions of their register state, so the runner also memoises
   rows: as soon as the design re-enters a previously seen state the
   remaining rows are tiled with NumPy instead of stepped.
3. **Execution, vectorised tier** — when the kernel plan reconstructs
   at least one wire, a *reduced* generated loop steps only the
   sequential residue (typically a handful of ops) and records the
   core wire columns; every feed-forward wire is then rebuilt for
   *all* cycles at once by the planned kernels — bitwise ops over
   ``(cycles,)`` uint64 vectors, ``np.take``-style table gathers,
   shifted views for peeled registers — writing into the same
   ``(cycles + 1, n_wires)`` value tensor the scalar tier produces.
   Memoised long runs step only until state re-entry and tile the
   activity matrix with period-aligned block copies (periodicity
   starts ``depth`` cycles after re-entry, where ``depth`` is the
   longest peeled register chain), so throughput on periodic designs
   is bounded by memory bandwidth, not the interpreter.
4. **Activity** — switching activity is computed *after* the run as
   vectorised Hamming weights over the ``(cycles + 1, n_wires)`` value
   matrix, written column-by-column into the ``(cycles, n_channels)``
   activity matrix.  The channel-index map is computed once at compile
   time; no per-cycle objects are allocated.
5. **Batching** (:func:`run_batch`) — the paper's experiments are
   fleet-scale: many device instances of a handful of netlist
   structures.  Lowering therefore also derives a *shape key* — the
   structural fingerprint with every per-device datum (constant values,
   lookup/ROM/transition tables, register reset values, wire initial
   values, activity weights) abstracted away.  N netlists sharing a
   shape key execute in **one** batched run: every wire becomes a
   ``(batch,)`` NumPy vector, per-device constants and tables are bound
   as stacked arrays indexed by lane, the step loop runs once for the
   whole fleet, wire values are recorded into a
   ``(cycles + 1, n_wires, batch)`` tensor, and activity is computed as
   batched Hamming weights.  State-cycle memoisation is batch-aware:
   stepping proceeds in chunks and each lane's state re-entry is
   detected independently, so ragged fleets (different cycle counts,
   different reset states) tile each lane's own period.  The kernel
   plan composes with the batch axis: under ``vectorise="auto"`` the
   batched loop steps only the sequential residue per cycle and the
   kernels rebuild every remaining wire for all ``cycles × lanes`` at
   once.

**Tier selection.**  ``engine="auto"`` on the
:class:`~repro.hdl.simulator.Simulator` compiles the netlist and lets
the engine pick per design: the vectorised tier whenever the plan
reconstructs at least one wire (every paper design), the scalar
generated loop when the sequential residue is the whole design — an
FSM whose every wire sits on the register feedback path, where a
reduced loop plus kernels would just be the scalar loop with extra
bookkeeping.  ``engine="compiled"`` pins the scalar loop (the oracle
the vectorised tier is byte-compared against), ``engine="vectorised"``
pins the kernel tier, and netlists the lowering pass rejects fall back
to the interpreted loop under ``"auto"``.  Opaque lookup callables,
input ports and oversized transition tables are simply forced into the
sequential residue, so they execute exactly the scalar statements —
the tier never guesses at semantics it cannot prove.

**Invariant — neither batching nor the vectorised tier changes trace
bytes.**  The compiled output is bit-identical to the interpreted
oracle, the batched path is byte-identical to the per-device compiled
path, and the vectorised tier is byte-identical to the scalar loop:
identical ``ActivityTrace`` matrices, channels and post-run netlist
state for every lane, regardless of batch size, lane order or
raggedness (``tests/test_engine.py``, ``tests/test_engine_batch.py``
and ``tests/test_engine_vectorised.py`` prove it for every paper
design).  Uint64 lane arithmetic mirrors the scalar
integer statements operation for operation, and both paths share one
activity kernel (:func:`_activity_from_values`), so consumers — most
importantly the fleet-level activity cache in
:mod:`repro.acquisition.device` — may freely mix scalar and batched
executions without invalidating anything keyed on trace content.

Lowering additionally yields a *structural fingerprint* — a digest of
the wire table, component graph and all lowered truth tables — which
:mod:`repro.acquisition.device` uses to share activity traces across a
fleet of devices manufactured from the same IP.  Two netlists with the
same structural fingerprint are bit-for-bit interchangeable; two
netlists with the same *shape key* merely ride in the same batch and
keep their own per-lane data.

Netlists containing constructs the lowering pass cannot prove
equivalent (custom component classes, wires outside the netlist,
extremely wide buses) raise :class:`CompileError`; the
:class:`~repro.hdl.simulator.Simulator` front-end then falls back to
the interpreted reference engine automatically.  Netlists with input
ports, opaque lookup callables or very wide transition tables compile
but are not *batchable*; :func:`~repro.hdl.simulator.simulate_batch`
runs those lanes through the scalar path instead.

A compiled program snapshots its netlist's *compile generation*
(:attr:`~repro.hdl.netlist.Netlist.compile_generation`).  A component
that mutates anything the program baked in announces it via
:meth:`~repro.hdl.component.Component.invalidate_compiled`, after
which every stale :class:`CompiledNetlist` raises :class:`CompileError`
instead of silently executing the old program; the ``Simulator``
front-end recompiles transparently.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hdl.activity import ActivityTrace, Channel
from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister
from repro.hdl.wires import Wire, mask

#: Lookup logic whose concatenated input bus is at most this wide is
#: exhaustively enumerated into a flat table at compile time.  The same
#: bound caps the state wires of transition tables the batched engine
#: densifies into sentinel-padded arrays.
MAX_TABLE_BITS = 16

#: Widest bus the int64-based activity vectorisation supports.
MAX_WIRE_WIDTH = 63

#: Runs at least this long use the state-memoising runner; shorter runs
#: skip the per-cycle dict bookkeeping (a design's period is rarely
#: shorter than a few hundred cycles, so short runs cannot amortise it).
MEMO_MIN_CYCLES = 512

#: Cycles the batched runner steps between two scans for per-lane state
#: re-entry.  Scanning is vectorised but not free, so it happens once
#: per chunk rather than once per cycle; a chunk the size of
#: :data:`MEMO_MIN_CYCLES` keeps the wasted post-period stepping of the
#: fastest lane bounded by one chunk.
BATCH_MEMO_CHUNK = MEMO_MIN_CYCLES


class CompileError(Exception):
    """The netlist contains a construct the lowering pass cannot prove
    equivalent to the interpreted semantics."""


#: Process-wide cache of generated step programs keyed on the
#: structural fingerprint.  Two netlists with the same fingerprint
#: lower to byte-identical source over identical wire indices and
#: value-equal bound constants, so the exec'd ``_settle`` / ``_run`` /
#: ``_run_memo`` / ``_rrun`` / ``_rrun_memo`` functions and the vector
#: plan can be shared: a fleet of N devices manufactured from the same
#: IP compiles its program exactly once.  Entries are
#: ``(source, settle, run, run_memo, rrun, rrun_memo, vector_plan)``.
_PROGRAM_CACHE: "OrderedDict[str, tuple]" = OrderedDict()

#: Process-wide cache of generated *batched* step programs, keyed on
#: ``(shape key, per-slot uniformity mask)``: the same shape lowers to
#: slightly different source depending on which data slots are uniform
#: across the batch (uniform tables index 1-D, ragged tables index by
#: lane), so both dimensions key the cache.
_BATCH_PROGRAM_CACHE: "OrderedDict[Tuple[str, Tuple], Tuple[str, Callable, Callable]]" = (
    OrderedDict()
)

#: Upper bound on distinct cached programs (LRU eviction).
PROGRAM_CACHE_MAX = 128


#: Per-shape cycle-axis vector plans for :func:`run_batch` (the scalar
#: path shares its plan through :data:`_PROGRAM_CACHE` instead).
_BATCH_PLAN_CACHE: "OrderedDict[str, _VectorPlan]" = OrderedDict()


def clear_program_cache() -> None:
    """Drop every shared compiled program (mainly for tests)."""
    _PROGRAM_CACHE.clear()
    _BATCH_PROGRAM_CACHE.clear()
    _BATCH_PLAN_CACHE.clear()


def program_cache_size() -> int:
    """Number of distinct netlist structures with a cached program."""
    return len(_PROGRAM_CACHE)


def batch_program_cache_size() -> int:
    """Number of distinct (shape, uniformity) batched programs cached."""
    return len(_BATCH_PROGRAM_CACHE)


if hasattr(np, "bitwise_count"):
    def _popcount(values: np.ndarray) -> np.ndarray:
        return np.bitwise_count(values)
else:  # pragma: no cover - NumPy < 2.0
    def _popcount(values: np.ndarray) -> np.ndarray:
        x = values.astype(np.uint64)
        x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
        x = (x & np.uint64(0x3333333333333333)) + (
            (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)


#: Marks "no transition entry" in densified transition tables.  Legal
#: wire values fit in :data:`MAX_WIRE_WIDTH` bits, so all-ones is free.
_TT_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)


def _activity_from_values(
    values: np.ndarray,
    cycles: int,
    specs: Sequence[tuple],
    params: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> np.ndarray:
    """Activity matrix from a recorded wire-value tensor.

    ``values`` is ``(cycles + 1, n_wires)`` for one netlist or
    ``(cycles + 1, n_wires, batch)`` for a batched execution; the
    result has the matching ``(cycles, n_channels[, batch])`` shape.
    ``params`` optionally overrides the per-spec activity parameters
    (LUT glitch factor, ROM precharge, clock load) with per-lane
    arrays for batches whose lanes carry different weights.

    Scalar and batched executions share this one kernel on purpose:
    every operation is elementwise, so a lane of a batched result is
    float-for-float identical to the same netlist's scalar result.
    """
    current = values[1:]
    previous = values[:-1]
    hd_cache: Dict[int, np.ndarray] = {}

    def hd(wire: int) -> np.ndarray:
        column = hd_cache.get(wire)
        if column is None:
            column = _popcount(current[:, wire] ^ previous[:, wire]).astype(
                np.float64
            )
            hd_cache[wire] = column
        return column

    matrix = np.empty(
        (cycles, len(specs)) + values.shape[2:], dtype=np.float64
    )
    for column, spec in enumerate(specs):
        op = spec[0]
        override = None if params is None else params[column]
        if op == "reg" or op == "out":
            matrix[:, column] = hd(spec[1])
        elif op == "in_out":
            matrix[:, column] = hd(spec[1]) + hd(spec[2])
        elif op == "inc":
            _, a, out, width = spec
            value = current[:, a]
            ripple = np.minimum(
                _popcount(value ^ (value + np.uint64(1))), width
            ).astype(np.float64)
            matrix[:, column] = hd(out) + 2.0 * ripple
        elif op == "lut":
            _, inputs, out, glitch_factor = spec
            if override is not None:
                glitch_factor = override
            toggles = 0.0 if not inputs else sum(hd(i) for i in inputs)
            matrix[:, column] = hd(out) + glitch_factor * toggles
        elif op == "tt":
            matrix[:, column] = hd(spec[2]) + 0.5 * hd(spec[1])
        elif op == "rom":
            _, addr, data, precharge = spec
            if override is not None:
                precharge = override
            matrix[:, column] = hd(addr) + hd(data) + precharge
        elif op == "io":
            matrix[:, column] = hd(spec[1])
        elif op == "clock":
            matrix[:, column] = spec[1] if override is None else override
        else:  # pragma: no cover - specs are produced in-module
            raise CompileError(f"unknown activity spec {op!r}")
    return matrix


@dataclass(frozen=True)
class _BatchLane:
    """Everything about one netlist that may differ from its shape mates.

    A batched program is generated per *shape*; these per-lane payloads
    supply the data the shape abstracts away: power-on wire values,
    register reset values, the contents of every data slot (constants,
    lookup tables, ROM images, transition tables, component names for
    error messages) and the per-channel activity weights.
    """

    initials: Tuple[int, ...]
    resets: Tuple[int, ...]
    slot_values: Tuple[object, ...]
    act_params: Tuple[Optional[float], ...]


class _Lowering:
    """Builds the generated source, namespace and metadata for one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.wires: List[Wire] = list(netlist.wires.values())
        self.index: Dict[int, int] = {id(w): i for i, w in enumerate(self.wires)}
        for wire in self.wires:
            if wire.width > MAX_WIRE_WIDTH:
                raise CompileError(
                    f"wire {wire.name!r} is {wire.width} bits wide; the "
                    f"compiled engine supports at most {MAX_WIRE_WIDTH}"
                )
        self.namespace: Dict[str, object] = {}
        self.fingerprintable = True
        #: Batch execution additionally requires every data-dependent
        #: construct to be expressible as lane-indexed array lookups.
        self.batchable = bool(self.wires)
        self.records: List[tuple] = [
            ("wires", tuple((w.name, w.width, w._initial) for w in self.wires))
        ]
        self.registers: List[DRegister] = []
        self.ports: List[InputPort] = []
        self.channels: List[Channel] = []
        self.activity_specs: List[tuple] = []
        self.act_params: List[Optional[float]] = []
        self.slot_kinds: List[str] = []
        self.slot_values: List[object] = []
        self._batch_op: Dict[int, tuple] = {}
        self._lookup_codegen: Dict[int, Optional[Tuple[int, ...]]] = {}
        self._counter = 0

    def wire_index(self, wire: Wire) -> int:
        key = id(wire)
        if key not in self.index:
            raise CompileError(
                f"component references wire {wire.name!r} that is not "
                f"registered in netlist {self.netlist.name!r}"
            )
        return self.index[key]

    def bind(self, prefix: str, value: object) -> str:
        """Place a constant object into the exec namespace."""
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        self.namespace[name] = value
        return name

    def slot(self, kind: str, value: object) -> int:
        """Allocate one per-lane data slot for the batched program."""
        self.slot_kinds.append(kind)
        self.slot_values.append(value)
        return len(self.slot_kinds) - 1

    def lower(self) -> None:
        """Index wires, lower components, derive channels + fingerprint.

        Source assembly (:meth:`generate_program`) is deferred until an
        execution is actually requested: a fleet-cache hit only needs
        the fingerprint, not a runnable program.
        """
        for component in self.netlist.components:
            self._lower_component(component)

    # -- per-component lowering -------------------------------------------

    def _lower_component(self, component) -> None:
        kind = type(component)
        if kind is DRegister:
            self._lower_register(component)
        elif kind is Constant:
            out = self.wire_index(component.output)
            self.records.append(
                ("Constant", component.name, out, component.value)
            )
            self._batch_op[id(component)] = (
                "const", self.slot("const", component.value), out
            )
        elif kind is XorArray:
            a, b = self.wire_index(component.a), self.wire_index(component.b)
            out = self.wire_index(component.output)
            self.records.append(("XorArray", component.name, a, b, out))
            self._batch_op[id(component)] = ("xor", a, b, out)
            self._channel(component, ("out", out))
        elif kind is Incrementer:
            a = self.wire_index(component.a)
            out = self.wire_index(component.output)
            self.records.append(("Incrementer", component.name, a, out))
            self._batch_op[id(component)] = (
                "inc", a, out, mask(component.a.width)
            )
            self._channel(component, ("inc", a, out, component.a.width))
        elif kind is BinaryToGray:
            a = self.wire_index(component.a)
            out = self.wire_index(component.output)
            self.records.append(("BinaryToGray", component.name, a, out))
            self._batch_op[id(component)] = ("b2g", a, out)
            self._channel(component, ("in_out", a, out))
        elif kind is GrayToBinary:
            a = self.wire_index(component.a)
            out = self.wire_index(component.output)
            self.records.append(("GrayToBinary", component.name, a, out))
            self._batch_op[id(component)] = ("g2b", a, out, component.a.width)
            self._channel(component, ("in_out", a, out))
        elif kind is Mux2:
            s = self.wire_index(component.select)
            a, b = self.wire_index(component.a), self.wire_index(component.b)
            out = self.wire_index(component.output)
            self.records.append(("Mux2", component.name, s, a, b, out))
            self._batch_op[id(component)] = ("mux", s, a, b, out)
            self._channel(component, ("out", out))
        elif kind is LookupLogic:
            self._lower_lookup(component)
        elif kind is TransitionTable:
            self._lower_transition_table(component)
        elif kind is SyncROM:
            addr = self.wire_index(component.address)
            data = self.wire_index(component.data)
            self.records.append(
                ("SyncROM", component.name, addr, data, component.contents,
                 component.precharge_activity)
            )
            self._batch_op[id(component)] = (
                "rom", self.slot("table", component.contents), addr, data
            )
            self._channel(
                component, ("rom", addr, data, component.precharge_activity)
            )
        elif kind is InputPort:
            target = self.wire_index(component.target)
            self.ports.append(component)
            # Stimulus callables have no canonical description, so a
            # netlist with input ports is never fingerprintable (and
            # therefore never batchable).
            self.fingerprintable = False
            self.batchable = False
            self._channel(component, ("io", target))
        elif kind is OutputPort:
            source = self.wire_index(component.source)
            self.records.append(("OutputPort", component.name, source))
            self._channel(component, ("io", source))
        elif kind is ClockTree:
            self.records.append(("ClockTree", component.name, component.load))
            self._channel(component, ("clock", component.load))
        else:
            raise CompileError(
                f"component {component.name!r} has unsupported type "
                f"{kind.__name__!r}"
            )

    def _channel(self, component, spec: tuple) -> None:
        kinds = component.activity_kinds()
        if len(kinds) != 1:  # pragma: no cover - all stock types emit one
            raise CompileError(
                f"component {component.name!r} reports {len(kinds)} activity "
                "channels; the compiled engine lowers exactly one"
            )
        self.channels.append(Channel(component.name, kinds[0]))
        self.activity_specs.append(spec)
        op = spec[0]
        if op == "lut" or op == "rom":
            self.act_params.append(spec[3])
        elif op == "clock":
            self.act_params.append(spec[1])
        else:
            self.act_params.append(None)

    def _lower_register(self, register: DRegister) -> None:
        d = self.wire_index(register.d)
        q = self.wire_index(register.q)
        self.registers.append(register)
        self.records.append(
            ("DRegister", register.name, d, q, register.reset_value)
        )
        self._channel(register, ("reg", q))

    def _lower_lookup(self, logic: LookupLogic) -> None:
        in_idx = tuple(self.wire_index(w) for w in logic.input_wires)
        out = self.wire_index(logic.output)
        table = self._tablefy(logic)
        if table is not None:
            self.records.append(
                ("LookupLogic", logic.name, in_idx, out, logic.glitch_factor,
                 table)
            )
            parts = tuple(
                (idx, wire.width)
                for idx, wire in zip(in_idx, logic.input_wires)
            )
            self._batch_op[id(logic)] = (
                "lut", self.slot("table", table), parts, out
            )
        else:
            self.fingerprintable = False
            self.batchable = False
        self._channel(logic, ("lut", in_idx, out, logic.glitch_factor))
        self._lookup_codegen[id(logic)] = table

    def _tablefy(self, logic: LookupLogic) -> Optional[Tuple[int, ...]]:
        """Exhaustively enumerate a lookup function into a flat table.

        Returns ``None`` when the input bus is too wide or the callable
        raises / returns out-of-range values somewhere in the domain (a
        partial function only defined on reachable codes); the lowered
        program then keeps calling the original function per cycle.
        """
        widths = [w.width for w in logic.input_wires]
        total = sum(widths)
        if total > MAX_TABLE_BITS:
            return None
        out_mask = mask(logic.output.width)
        table: List[int] = []
        try:
            for packed in range(1 << total):
                values = []
                shift = total
                for width in widths:
                    shift -= width
                    values.append((packed >> shift) & mask(width))
                result = logic.function(*values)
                result_int = int(result)
                if result_int != result or not 0 <= result_int <= out_mask:
                    return None
                table.append(result_int)
        except Exception:
            return None
        return tuple(table)

    def _lower_transition_table(self, component: TransitionTable) -> None:
        state = self.wire_index(component.state)
        nxt = self.wire_index(component.next_state)
        next_mask = mask(component.next_state.width)
        for code, target in component.table.items():
            if not 0 <= target <= next_mask:
                raise CompileError(
                    f"{component.name}: transition target {target} does not "
                    f"fit in {component.next_state.width} bits"
                )
            if code < 0:
                raise CompileError(
                    f"{component.name}: negative state code {code}"
                )
        items = tuple(sorted(component.table.items()))
        self.records.append(
            ("TransitionTable", component.name, state, nxt, items)
        )
        if component.state.width <= MAX_TABLE_BITS:
            self._batch_op[id(component)] = (
                "tt",
                self.slot("ttable", (component.state.width, items)),
                self.slot("ttname", component.name),
                state,
                nxt,
            )
        else:
            # Densifying a 2^width sentinel table is not worth it for
            # very wide state buses; those lanes run scalar.
            self.batchable = False
        self._channel(component, ("tt", state, nxt))

    # -- source assembly ---------------------------------------------------

    def _comb_statement(self, component, stim_expr: str) -> List[str]:
        """Statements settling one combinational component."""
        w = lambda i: f"w{i}"  # noqa: E731 - tiny local shorthand
        kind = type(component)
        if kind is Constant:
            return [f"{w(self.wire_index(component.output))} = {component.value}"]
        if kind is XorArray:
            return [
                f"{w(self.wire_index(component.output))} = "
                f"{w(self.wire_index(component.a))} ^ {w(self.wire_index(component.b))}"
            ]
        if kind is Incrementer:
            return [
                f"{w(self.wire_index(component.output))} = "
                f"({w(self.wire_index(component.a))} + 1) & {mask(component.a.width)}"
            ]
        if kind is BinaryToGray:
            a = w(self.wire_index(component.a))
            return [f"{w(self.wire_index(component.output))} = {a} ^ ({a} >> 1)"]
        if kind is GrayToBinary:
            lines = [f"_x = {w(self.wire_index(component.a))}"]
            shift = 1
            while shift < component.a.width:
                lines.append(f"_x ^= _x >> {shift}")
                shift <<= 1
            lines.append(f"{w(self.wire_index(component.output))} = _x")
            return lines
        if kind is Mux2:
            return [
                f"{w(self.wire_index(component.output))} = "
                f"{w(self.wire_index(component.b))} "
                f"if {w(self.wire_index(component.select))} "
                f"else {w(self.wire_index(component.a))}"
            ]
        if kind is LookupLogic:
            return self._lookup_statement(component)
        if kind is TransitionTable:
            return self._transition_statement(component)
        if kind is SyncROM:
            name = self.bind("T", component.contents)
            return [
                f"{w(self.wire_index(component.data))} = "
                f"{name}[{w(self.wire_index(component.address))}]"
            ]
        if kind is InputPort:
            name = self.bind("S", component.stimulus)
            target = component.target
            out = w(self.wire_index(target))
            return [
                f"{out} = {name}({stim_expr})",
                f"if not 0 <= {out} <= {mask(target.width)}: "
                f"raise ValueError('wire %r: value %s does not fit in "
                f"{target.width} bits' % ({target.name!r}, {out}))",
            ]
        if kind is OutputPort:
            return []
        raise CompileError(  # pragma: no cover - guarded in _lower_component
            f"no statement lowering for {kind.__name__}"
        )

    def _lookup_statement(self, logic: LookupLogic) -> List[str]:
        w = lambda i: f"w{i}"  # noqa: E731
        out_idx = self.wire_index(logic.output)
        table = self._lookup_codegen[id(logic)]
        in_idx = [self.wire_index(wire) for wire in logic.input_wires]
        if table is not None:
            name = self.bind("T", table)
            widths = [wire.width for wire in logic.input_wires]
            shift = sum(widths)
            parts = []
            for idx, width in zip(in_idx, widths):
                shift -= width
                parts.append(f"({w(idx)} << {shift})" if shift else w(idx))
            return [f"{w(out_idx)} = {name}[{' | '.join(parts)}]"]
        name = self.bind("F", logic.function)
        args = ", ".join(w(i) for i in in_idx)
        out = w(out_idx)
        out_wire = logic.output
        return [
            f"{out} = {name}({args})",
            f"if not 0 <= {out} <= {mask(out_wire.width)}: "
            f"raise ValueError('wire %r: value %s does not fit in "
            f"{out_wire.width} bits' % ({out_wire.name!r}, {out}))",
        ]

    def _transition_statement(self, component: TransitionTable) -> List[str]:
        w = lambda i: f"w{i}"  # noqa: E731
        state = w(self.wire_index(component.state))
        out = w(self.wire_index(component.next_state))
        name = self.bind("D", dict(component.table))
        return [
            f"{out} = {name}.get({state}, -1)",
            f"if {out} < 0: raise KeyError('%s: state code %s has no "
            f"transition entry' % ({component.name!r}, format({state}, '#x')))",
        ]

    def vector_ops(self, order: Sequence) -> Tuple[tuple, ...]:
        """Shape-level op per combinational component, aligned with ``order``.

        Components the batched lowering covers reuse their batch op;
        the rest get pseudo-ops so :func:`_vector_partition` sees their
        dataflow: ``("port", target)`` for input ports, ``("opaque",
        inputs, out)`` for un-tablefied lookup callables, ``("widett",
        state, next)`` for transition tables too wide to densify and
        ``("nop",)`` for output pads.  Position ``i`` always describes
        ``order[i]``, so partition results index straight into the
        combinational order.
        """
        ops: List[tuple] = []
        for component in order:
            op = self._batch_op.get(id(component))
            if op is not None:
                ops.append(op)
                continue
            kind = type(component)
            if kind is InputPort:
                ops.append(("port", self.wire_index(component.target)))
            elif kind is LookupLogic:
                ops.append((
                    "opaque",
                    tuple(self.wire_index(w) for w in component.input_wires),
                    self.wire_index(component.output),
                ))
            elif kind is TransitionTable:
                ops.append((
                    "widett",
                    self.wire_index(component.state),
                    self.wire_index(component.next_state),
                ))
            else:  # OutputPort (ClockTree is not combinational)
                ops.append(("nop",))
        return tuple(ops)

    def generate_program(self) -> None:
        """Assemble and exec the scalar runners (full and reduced).

        ``_settle`` / ``_run`` / ``_run_memo`` execute the whole design;
        ``_rrun`` / ``_rrun_memo`` execute only the vector plan's
        phase-1 residue (core ops + core registers) and record compact
        core-wire rows for the phase-2 kernels to expand.
        """
        order = self.netlist.combinational_order()
        n = len(self.wires)
        names = [f"w{i}" for i in range(n)]
        unpack = ", ".join(names) + ("," if names else "")
        row = "(" + ", ".join(names) + ("," if names else "") + ")"
        regs = tuple(
            (self.wire_index(r.d), self.wire_index(r.q))
            for r in self.registers
        )
        plan = _vector_partition(n, regs, self.vector_ops(order))
        self.vector_plan = plan

        port_slot = {id(port): i for i, port in enumerate(self.ports)}
        settle_body: List[str] = []
        loop_body: List[str] = []
        for component in order:
            settle_body.extend(self._comb_statement(component, "0"))
            # Constants stay in the loop body too: the interpreted oracle
            # drives them every cycle, which matters for the first cycle
            # of a never-reset netlist (previous value is the power-on
            # initial, not the constant).
            if type(component) is InputPort:
                stim_expr = f"_t + 1 + _off[{port_slot[id(component)]}]"
            else:
                stim_expr = "0"
            loop_body.extend(self._comb_statement(component, stim_expr))

        capture = [
            f"_c{i} = w{self.wire_index(reg.d)}"
            for i, reg in enumerate(self.registers)
        ]
        commit = [
            f"w{self.wire_index(reg.q)} = _c{i}"
            for i, reg in enumerate(self.registers)
        ]

        step = "\n".join(
            part for part in (
                _indent(capture, 2), _indent(commit, 2), _indent(loop_body, 2)
            ) if part
        )
        settle = _indent(settle_body, 1) or "    pass"
        unpack_line = f"    {unpack} = _v\n" if names else ""
        unpack_run = f"    {unpack} = _init\n" if names else ""

        source = (
            f"def _settle(_v):\n"
            f"{unpack_line}"
            f"{settle}\n"
            f"    return {row}\n"
            f"\n"
            f"def _run(_cycles, _init, _off):\n"
            f"    _rows = [_init]\n"
            f"    _ap = _rows.append\n"
            f"{unpack_run}"
            f"    for _t in range(_cycles):\n"
            f"{step}\n"
            f"        _ap({row})\n"
            f"    return _rows, None\n"
            f"\n"
            f"def _run_memo(_cycles, _init, _off):\n"
            f"    _rows = [_init]\n"
            f"    _ap = _rows.append\n"
            f"    _seen = {{_init: 0}}\n"
            f"{unpack_run}"
            f"    for _t in range(_cycles):\n"
            f"{step}\n"
            f"        _r = {row}\n"
            f"        _j = _seen.get(_r)\n"
            f"        if _j is not None:\n"
            f"            return _rows, _j\n"
            f"        _seen[_r] = len(_rows)\n"
            f"        _ap(_r)\n"
            f"    return _rows, None\n"
        )

        # Reduced runners: the same step semantics restricted to the
        # vector plan's phase-1 residue.  Core statements only ever read
        # core wires (the partition closure guarantees it), so the loop
        # tracks and records just those columns; the recorded row is the
        # memo key — core rows are Markov (nothing outside the residue
        # feeds back into it), so core re-entry implies core periodicity.
        core_names = [f"w{i}" for i in plan.core_wires]
        core_unpack = ", ".join(core_names) + ("," if core_names else "")
        core_row = (
            "(" + ", ".join(core_names) + ("," if core_names else "") + ")"
        )
        core_set = set(plan.core_ops)
        rloop_body: List[str] = []
        for pos, component in enumerate(order):
            if pos not in core_set:
                continue
            if type(component) is InputPort:
                stim_expr = f"_t + 1 + _off[{port_slot[id(component)]}]"
            else:
                stim_expr = "0"
            rloop_body.extend(self._comb_statement(component, stim_expr))
        rcapture = [
            f"_c{i} = w{self.wire_index(self.registers[i].d)}"
            for i in plan.core_regs
        ]
        rcommit = [
            f"w{self.wire_index(self.registers[i].q)} = _c{i}"
            for i in plan.core_regs
        ]
        rstep = "\n".join(
            part for part in (
                _indent(rcapture, 2),
                _indent(rcommit, 2),
                _indent(rloop_body, 2),
            ) if part
        ) or "        pass"
        runpack = f"    {core_unpack} = _init\n" if core_names else ""
        source += (
            f"\n"
            f"def _rrun(_cycles, _init, _off):\n"
            f"    _rows = [_init]\n"
            f"    _ap = _rows.append\n"
            f"{runpack}"
            f"    for _t in range(_cycles):\n"
            f"{rstep}\n"
            f"        _ap({core_row})\n"
            f"    return _rows, None\n"
            f"\n"
            f"def _rrun_memo(_cycles, _init, _off):\n"
            f"    _rows = [_init]\n"
            f"    _ap = _rows.append\n"
            f"    _seen = {{_init: 0}}\n"
            f"{runpack}"
            f"    for _t in range(_cycles):\n"
            f"{rstep}\n"
            f"        _r = {core_row}\n"
            f"        _j = _seen.get(_r)\n"
            f"        if _j is not None:\n"
            f"            return _rows, _j\n"
            f"        _seen[_r] = len(_rows)\n"
            f"        _ap(_r)\n"
            f"    return _rows, None\n"
        )
        self.source = source
        exec(compile(source, f"<compiled:{self.netlist.name}>", "exec"),
             self.namespace)

    def fingerprint(self) -> Optional[str]:
        if not self.fingerprintable:
            return None
        digest = hashlib.sha256(repr(tuple(self.records)).encode())
        return digest.hexdigest()

    # -- batch metadata ----------------------------------------------------

    def batch_metadata(
        self, order: Sequence
    ) -> Tuple[str, tuple, _BatchLane]:
        """Shape key, codegen plan and per-lane payload for batching.

        The *plan* is pure shape-level data (wire count, register d/q
        indices, ordered batch ops, slot kinds) — everything the
        batched code generator needs; the *lane* payload carries this
        netlist's values for the data the shape abstracts away.  Two
        netlists with equal shape keys have byte-identical plans.
        """
        ops = tuple(
            self._batch_op[id(component)]
            for component in order
            if id(component) in self._batch_op
        )
        regs = tuple(
            (self.wire_index(r.d), self.wire_index(r.q))
            for r in self.registers
        )
        widths = tuple(w.width for w in self.wires)
        stripped_specs = []
        for spec in self.activity_specs:
            op = spec[0]
            if op == "lut" or op == "rom":
                stripped_specs.append(spec[:3])
            elif op == "clock":
                stripped_specs.append((op,))
            else:
                stripped_specs.append(spec)
        shape_records = (
            widths, regs, ops, tuple(stripped_specs), tuple(self.slot_kinds)
        )
        shape_key = hashlib.sha256(repr(shape_records).encode()).hexdigest()
        plan = (len(self.wires), regs, ops, tuple(self.slot_kinds))
        lane = _BatchLane(
            initials=tuple(w._initial for w in self.wires),
            resets=tuple(r.reset_value for r in self.registers),
            slot_values=tuple(self.slot_values),
            act_params=tuple(self.act_params),
        )
        return shape_key, plan, lane


def _indent(lines: Sequence[str], level: int) -> str:
    pad = "    " * level
    return "\n".join(pad + line for line in lines) if lines else ""


# -- batched code generation ----------------------------------------------


def _batch_statement(op: tuple, uniform: Tuple) -> List[str]:
    """Vectorised statements for one lowered batch op.

    Mirrors :meth:`_Lowering._comb_statement` operation for operation,
    but over ``(batch,)`` uint64 lane vectors: per-lane data comes from
    the ``_D{slot}`` arrays, ragged tables index by lane through the
    ``_L`` lane-index vector, and Python conditionals become
    ``numpy.where``.  Every statement rebinds (never mutates) its
    arrays, so captured register values stay stable within a cycle.
    """
    kind = op[0]
    if kind == "const":
        _, slot, out = op
        return [f"w{out} = _D{slot}"]
    if kind == "xor":
        _, a, b, out = op
        return [f"w{out} = w{a} ^ w{b}"]
    if kind == "inc":
        _, a, out, m = op
        return [f"w{out} = (w{a} + 1) & {m}"]
    if kind == "b2g":
        _, a, out = op
        return [f"w{out} = w{a} ^ (w{a} >> 1)"]
    if kind == "g2b":
        _, a, out, width = op
        lines = [f"_x = w{a}"]
        shift = 1
        while shift < width:
            lines.append(f"_x = _x ^ (_x >> {shift})")
            shift <<= 1
        lines.append(f"w{out} = _x")
        return lines
    if kind == "mux":
        _, s, a, b, out = op
        return [f"w{out} = _np.where(w{s} != 0, w{b}, w{a})"]
    if kind == "lut":
        _, slot, parts, out = op
        shift = sum(width for _, width in parts)
        exprs = []
        for idx, width in parts:
            shift -= width
            exprs.append(f"(w{idx} << {shift})" if shift else f"w{idx}")
        index = " | ".join(exprs)
        if uniform[slot]:
            return [f"w{out} = _D{slot}[{index}]"]
        return [f"w{out} = _D{slot}[_L, {index}]"]
    if kind == "rom":
        _, slot, addr, out = op
        if uniform[slot]:
            return [f"w{out} = _D{slot}[w{addr}]"]
        return [f"w{out} = _D{slot}[_L, w{addr}]"]
    if kind == "tt":
        _, tslot, nslot, state, out = op
        lookup = (
            f"w{out} = _D{tslot}[w{state}]"
            if uniform[tslot]
            else f"w{out} = _D{tslot}[_L, w{state}]"
        )
        return [
            lookup,
            f"if (w{out} == _TTSENT).any():",
            f"    _i = int((w{out} == _TTSENT).argmax())",
            f"    raise KeyError('%s: state code %s has no transition "
            f"entry' % (_D{nslot}[_i], format(int(w{state}[_i]), '#x')))",
        ]
    raise CompileError(  # pragma: no cover - ops are produced in-module
        f"no batched lowering for op {kind!r}"
    )


def _build_batch_source(
    plan: tuple, uniform: Tuple, partition: Optional["_VectorPlan"] = None
) -> str:
    """Assemble ``_bsettle`` / ``_brun`` source for one shape.

    With a ``partition`` (the cycle-axis vector plan), ``_brun``
    executes only the phase-1 residue — core ops and core registers —
    and records compact core-wire rows; the settle pass stays full
    because the baseline row needs every wire.  Without one, the loop
    executes and records the whole design (the scalar-per-cycle batch
    oracle the vectorised composition is tested against).
    """
    n_wires, regs, ops, slot_kinds = plan
    names = [f"w{i}" for i in range(n_wires)]
    unpack = ", ".join(names) + ","
    data_names = [f"_D{i}" for i in range(len(slot_kinds))] + ["_L"]
    data_unpack = "(" + ", ".join(data_names) + ",) = _d"

    body: List[str] = []
    for op in ops:
        body.extend(_batch_statement(op, uniform))
    if partition is None:
        loop_body = body
        loop_regs = list(enumerate(regs))
        record = list(range(n_wires))
    else:
        core_set = set(partition.core_ops)
        loop_body = []
        for pos, op in enumerate(ops):
            if pos in core_set:
                loop_body.extend(_batch_statement(op, uniform))
        loop_regs = [(i, regs[i]) for i in partition.core_regs]
        record = list(partition.core_wires)
    capture = [f"_c{i} = w{d}" for i, (d, _q) in loop_regs]
    commit = [f"w{q} = _c{i}" for i, (_d, q) in loop_regs]
    stores = ["_Ot = _O[_t + 1]"] + [
        f"_Ot[{k}] = w{i}" for k, i in enumerate(record)
    ]

    settle_body = _indent(body, 1) or "    pass"
    step = "\n".join(
        part for part in (
            _indent(capture, 2),
            _indent(commit, 2),
            _indent(loop_body, 2),
            _indent(stores, 2),
        ) if part
    )
    return (
        f"def _bsettle(_w, _d):\n"
        f"    {data_unpack}\n"
        f"    ({unpack}) = _w\n"
        f"{settle_body}\n"
        f"    return ({unpack})\n"
        f"\n"
        f"def _brun(_cycles, _w, _O, _d):\n"
        f"    {data_unpack}\n"
        f"    ({unpack}) = _w\n"
        f"    for _t in range(_cycles):\n"
        f"{step}\n"
        f"    return ({unpack})\n"
    )


def _batch_program(
    shape_key: str,
    plan: tuple,
    uniform: Tuple,
    partition: Optional["_VectorPlan"] = None,
) -> Tuple[Callable, Callable]:
    """Fetch or generate the batched program for (shape, uniformity).

    Core-recording (vectorised-composition) programs cache separately
    from full-recording ones — the partition is itself a pure function
    of the shape, so a boolean suffices as the third key dimension.
    """
    cache_key = (shape_key, uniform, partition is not None)
    cached = _BATCH_PROGRAM_CACHE.get(cache_key)
    if cached is not None:
        _BATCH_PROGRAM_CACHE.move_to_end(cache_key)
        return cached[1], cached[2]
    source = _build_batch_source(plan, uniform, partition)
    namespace: Dict[str, object] = {"_np": np, "_TTSENT": _TT_SENTINEL}
    exec(compile(source, "<batched>", "exec"), namespace)
    entry = (source, namespace["_bsettle"], namespace["_brun"])
    _BATCH_PROGRAM_CACHE[cache_key] = entry
    while len(_BATCH_PROGRAM_CACHE) > PROGRAM_CACHE_MAX:
        _BATCH_PROGRAM_CACHE.popitem(last=False)
    return entry[1], entry[2]


def _dense_transition_table(value: Tuple[int, Tuple]) -> np.ndarray:
    """Densify a (state width, sorted items) transition table.

    Missing codes hold :data:`_TT_SENTINEL`, which the generated check
    turns into the same ``KeyError`` the scalar paths raise.
    """
    width, items = value
    size = 1 << width
    table = np.full(size, _TT_SENTINEL, dtype=np.uint64)
    for code, target in items:
        # Codes beyond the state wire's width are unreachable (wires
        # are width-masked); the scalar paths simply never look them
        # up, so the dense form drops them rather than overflowing.
        if code < size:
            table[code] = target
    return table


def _first_state_reentry(rows: np.ndarray) -> Optional[Tuple[int, int]]:
    """First ``(j, t1)`` with ``rows[t1] == rows[j]`` and ``j < t1``.

    This is exactly the state re-entry the scalar ``_run_memo`` detects:
    ``t1`` is the first time index whose full wire-value row repeats an
    earlier row ``j``; from ``j`` on the sequence is periodic with
    period ``t1 - j``.  Returns ``None`` when no row repeats.
    """
    arr = np.ascontiguousarray(rows)
    _, first_index, inverse = np.unique(
        arr, axis=0, return_index=True, return_inverse=True
    )
    inverse = np.asarray(inverse).reshape(-1)
    first_occurrence = first_index[inverse]
    duplicate = first_occurrence != np.arange(arr.shape[0])
    if not duplicate.any():
        return None
    t1 = int(duplicate.argmax())
    return int(first_occurrence[t1]), t1


# -- cycle-axis vectorisation (the third execution tier) -------------------

#: Op kinds the vectorised tier always keeps in the scalar phase-1
#: residue: transition tables (sparse dict semantics whose ``KeyError``
#: must fire at the first offending cycle), opaque lookup callables,
#: input ports (arbitrary stimulus callables) and transition tables too
#: wide to densify.
_VECTOR_CORE_KINDS = frozenset({"tt", "widett", "port", "opaque"})


def _op_wires(op: tuple) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """``(read wire indices, written wire indices)`` of one lowered op."""
    kind = op[0]
    if kind == "const":
        return (), (op[2],)
    if kind == "xor":
        return (op[1], op[2]), (op[3],)
    if kind == "inc" or kind == "b2g" or kind == "g2b":
        return (op[1],), (op[2],)
    if kind == "mux":
        return (op[1], op[2], op[3]), (op[4],)
    if kind == "lut":
        return tuple(idx for idx, _width in op[2]), (op[3],)
    if kind == "rom":
        return (op[2],), (op[3],)
    if kind == "tt":
        return (op[3],), (op[4],)
    if kind == "widett":
        return (op[1],), (op[2],)
    if kind == "port":
        return (), (op[1],)
    if kind == "opaque":
        return tuple(op[1]), (op[2],)
    if kind == "nop":
        return (), ()
    raise CompileError(  # pragma: no cover - ops are produced in-module
        f"unknown lowered op {kind!r}"
    )


@dataclass(frozen=True)
class _VectorPlan:
    """How one netlist shape splits into sequential residue + kernels.

    ``core_ops`` / ``core_regs`` / ``core_wires`` describe phase 1: the
    ops, registers and recorded wires of the reduced scalar step loop.
    ``kernels`` is the topologically ordered phase-2 program that
    reconstructs every remaining wire column for all cycles at once.
    ``depth`` is the longest chain of peeled registers: a full value
    row depends on at most ``depth`` earlier core rows, so periodicity
    of the full rows lags the core-row period start by ``depth``.
    """

    core_wires: Tuple[int, ...]
    core_ops: Tuple[int, ...]
    core_regs: Tuple[int, ...]
    kernels: Tuple[tuple, ...]
    depth: int

    @property
    def profitable(self) -> bool:
        """True when phase 2 reconstructs at least one computed wire."""
        return any(kernel[0] != "hold" for kernel in self.kernels)


def _vector_partition(
    n_wires: int, regs: Sequence[Tuple[int, int]], ops: Sequence[tuple]
) -> _VectorPlan:
    """Partition a lowered netlist for cycle-axis vectorisation.

    Phase 1 (the sequential residue) keeps: every forced-core op
    (:data:`_VECTOR_CORE_KINDS`), every register on a register-to-
    register dependency cycle (the genuine recurrence state), and the
    transitive combinational fan-in of both.  Everything else — feed-
    forward combinational slices whose inputs are core columns, plus
    *peeled* registers (acyclic state that is a pure one-cycle delay of
    a reconstructible wire) — becomes a phase-2 kernel evaluated over
    whole blocks of cycles at once.
    """
    reads: List[Tuple[int, ...]] = []
    writes: List[Tuple[int, ...]] = []
    producer: Dict[int, Tuple[str, int]] = {}
    for pos, op in enumerate(ops):
        op_reads, op_writes = _op_wires(op)
        reads.append(op_reads)
        writes.append(op_writes)
        for wire in op_writes:
            producer[wire] = ("op", pos)
    for pos, (_d, q) in enumerate(regs):
        producer[q] = ("reg", pos)

    def reg_sources(wire: int) -> set:
        """Registers whose Q reaches ``wire`` through combinational ops."""
        found: set = set()
        seen: set = set()
        stack = [wire]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = producer.get(current)
            if entry is None:
                continue
            kind, pos = entry
            if kind == "reg":
                found.add(pos)
            else:
                stack.extend(reads[pos])
        return found

    reg_deps = [reg_sources(d) for d, _q in regs]
    # A register carries recurrence state iff it can reach itself
    # through the register dependency graph; acyclic registers are
    # "peeled" and reconstructed in phase 2 as one-cycle column shifts.
    on_cycle: set = set()
    for start in range(len(regs)):
        stack = list(reg_deps[start])
        seen = set()
        while stack:
            reg = stack.pop()
            if reg == start:
                on_cycle.add(start)
                break
            if reg in seen:
                continue
            seen.add(reg)
            stack.extend(reg_deps[reg])

    core_ops = {pos for pos, op in enumerate(ops) if op[0] in _VECTOR_CORE_KINDS}
    core_regs = set(on_cycle)
    needed: set = set()
    stack = []
    for pos in core_ops:
        stack.extend(reads[pos])
    for pos in core_regs:
        stack.append(regs[pos][0])
    while stack:
        wire = stack.pop()
        if wire in needed:
            continue
        needed.add(wire)
        entry = producer.get(wire)
        if entry is None:
            continue
        kind, pos = entry
        if kind == "reg":
            if pos not in core_regs:
                core_regs.add(pos)
                stack.append(regs[pos][0])
        elif pos not in core_ops:
            core_ops.add(pos)
            stack.extend(reads[pos])

    phase1: set = set()
    for pos in core_ops:
        phase1.update(writes[pos])
    for pos in core_regs:
        phase1.add(regs[pos][1])
    for wire in needed:
        if wire not in producer:
            phase1.add(wire)  # undriven wire a core statement reads

    # Phase-2 nodes: the remaining combinational ops plus peeled
    # registers (column shifts), in input order for determinism.
    nodes: List[Tuple[tuple, Tuple[int, ...], Tuple[int, ...]]] = []
    for pos, op in enumerate(ops):
        if pos in core_ops or not writes[pos]:
            continue
        nodes.append((op, reads[pos], writes[pos]))
    for pos, (d, q) in enumerate(regs):
        if pos not in core_regs:
            nodes.append((("shift", d, q), (d,), (q,)))
    written2: set = set()
    for _op, _r, node_writes in nodes:
        written2.update(node_writes)

    # Undriven wires no phase computes hold their baseline value.
    kernels: List[tuple] = [
        ("hold", wire)
        for wire in sorted(set(range(n_wires)) - phase1 - written2)
    ]

    # Kahn over the phase-2-produced wires.  A comb op never cycles
    # (netlist validation) and a cycle through a peeled register would
    # make that register reach itself, i.e. core — so this always
    # completes.
    produced_by: Dict[int, int] = {}
    for index, (_op, _r, node_writes) in enumerate(nodes):
        for wire in node_writes:
            produced_by[wire] = index
    in_degree = [0] * len(nodes)
    dependents: List[List[int]] = [[] for _ in nodes]
    for index, (_op, node_reads, _w) in enumerate(nodes):
        for wire in set(node_reads):
            upstream = produced_by.get(wire)
            if upstream is not None and upstream != index:
                dependents[upstream].append(index)
                in_degree[index] += 1
    ready = [index for index, degree in enumerate(in_degree) if degree == 0]
    ordered: List[int] = []
    while ready:
        index = min(ready)
        ready.remove(index)
        ordered.append(index)
        for downstream in dependents[index]:
            in_degree[downstream] -= 1
            if in_degree[downstream] == 0:
                ready.append(downstream)
    if len(ordered) != len(nodes):  # pragma: no cover - defensive
        raise CompileError("cycle in phase-2 kernel plan")

    depth_of = [0] * n_wires
    depth = 0
    for index in ordered:
        op, node_reads, node_writes = nodes[index]
        if op[0] == "shift":
            node_depth = depth_of[op[1]] + 1
        else:
            node_depth = max((depth_of[wire] for wire in node_reads), default=0)
        for wire in node_writes:
            depth_of[wire] = node_depth
        depth = max(depth, node_depth)
        kernels.append(op)

    return _VectorPlan(
        core_wires=tuple(sorted(phase1)),
        core_ops=tuple(sorted(core_ops)),
        core_regs=tuple(sorted(core_regs)),
        kernels=tuple(kernels),
        depth=depth,
    )


def _apply_vector_kernels(
    values: np.ndarray,
    kernels: Sequence[tuple],
    slot_data: Sequence[object],
    slot_ragged: Sequence[bool],
    lanes: Optional[np.ndarray],
) -> None:
    """Run the phase-2 kernel program over a value tensor in place.

    ``values`` is ``(rows, n_wires)`` or ``(rows, n_wires, batch)``
    with row 0 (the settled baseline) and every core column already
    filled; each kernel fills one non-core column for rows ``1..``.
    The arithmetic mirrors the scalar statements operation for
    operation over uint64, so reconstructed columns are bit-identical
    to stepped ones.  ``slot_ragged[slot]`` marks per-lane stacked
    tables (indexed through ``lanes``); scalar execution passes all-
    ``False`` and ``lanes=None``.
    """
    body = values[1:]
    one = np.uint64(1)
    for op in kernels:
        kind = op[0]
        if kind == "xor":
            _, a, b, out = op
            body[:, out] = body[:, a] ^ body[:, b]
        elif kind == "inc":
            _, a, out, m = op
            body[:, out] = (body[:, a] + one) & np.uint64(m)
        elif kind == "b2g":
            _, a, out = op
            column = body[:, a]
            body[:, out] = column ^ (column >> one)
        elif kind == "g2b":
            _, a, out, width = op
            column = body[:, a].copy()
            shift = 1
            while shift < width:
                column ^= column >> np.uint64(shift)
                shift <<= 1
            body[:, out] = column
        elif kind == "mux":
            _, s, a, b, out = op
            body[:, out] = np.where(body[:, s] != 0, body[:, b], body[:, a])
        elif kind == "const":
            _, slot, out = op
            body[:, out] = slot_data[slot]
        elif kind == "lut":
            _, slot, parts, out = op
            shift = sum(width for _idx, width in parts)
            index = None
            for idx, width in parts:
                shift -= width
                part = body[:, idx] << np.uint64(shift) if shift else body[:, idx]
                index = part if index is None else index | part
            table = slot_data[slot]
            if slot_ragged[slot]:
                body[:, out] = table[lanes, index]
            else:
                body[:, out] = table[index]
        elif kind == "rom":
            _, slot, addr, out = op
            table = slot_data[slot]
            if slot_ragged[slot]:
                body[:, out] = table[lanes, body[:, addr]]
            else:
                body[:, out] = table[body[:, addr]]
        elif kind == "shift":
            _, d, q = op
            body[:, q] = values[:-1, d]
        elif kind == "hold":
            body[:, op[1]] = values[0, op[1]]
        else:  # pragma: no cover - plans are produced in-module
            raise CompileError(f"no vector kernel for op {kind!r}")


def _vector_reconstruct(
    init_row: np.ndarray,
    core_rows: np.ndarray,
    core_wires: Tuple[int, ...],
    kernels: Sequence[tuple],
    slot_data: Sequence[object],
    slot_ragged: Sequence[bool],
    lanes: Optional[np.ndarray],
) -> np.ndarray:
    """Full value tensor from phase-1 core rows + phase-2 kernels.

    ``init_row`` is the settled baseline — ``(n_wires,)`` scalar or
    ``(n_wires, batch)`` batched; ``core_rows`` is the compact
    ``(rows, n_core[, batch])`` phase-1 recording (row 0 unused).
    """
    values = np.empty((core_rows.shape[0],) + init_row.shape, dtype=np.uint64)
    values[0] = init_row
    if core_wires:
        values[1:, np.asarray(core_wires, dtype=np.intp)] = core_rows[1:]
    _apply_vector_kernels(values, kernels, slot_data, slot_ragged, lanes)
    return values


def _vector_prefix(
    init_row: np.ndarray,
    core_rows: np.ndarray,
    repeat: Tuple[int, int],
    cycles: int,
    core_wires: Tuple[int, ...],
    kernels: Sequence[tuple],
    slot_data: Sequence[object],
    slot_ragged: Sequence[bool],
    depth: int,
) -> Tuple[np.ndarray, int, int, int]:
    """Reconstructed value prefix of a memoised (periodic) vector run.

    ``repeat`` is the first core-row re-entry ``(j, t1)``: core rows
    are periodic with period ``t1 - j`` from row ``j`` on, hence full
    rows from row ``j + depth`` on.  Returns ``(values, last, start,
    period)`` where ``values`` holds rows ``0..last`` with ``last =
    min(cycles, t1 + depth)``, enough that every later row ``r`` equals
    row ``start + (r - start) % period``.
    """
    j, t1 = repeat
    period = t1 - j
    start = j + depth
    last = min(cycles, t1 + depth)
    stepped = core_rows.shape[0] - 1
    if last <= stepped:
        core_ext = core_rows[:last + 1]
    else:
        extra = np.arange(stepped + 1, last + 1)
        core_ext = np.concatenate(
            [core_rows, core_rows[j + (extra - j) % period]], axis=0
        )
    values = _vector_reconstruct(
        init_row, core_ext, core_wires, kernels, slot_data, slot_ragged, None
    )
    return values, last, start, period


def _vector_memo_trace(
    init_row: np.ndarray,
    core_rows: np.ndarray,
    repeat: Tuple[int, int],
    cycles: int,
    core_wires: Tuple[int, ...],
    kernels: Sequence[tuple],
    slot_data: Sequence[object],
    slot_ragged: Sequence[bool],
    depth: int,
    specs: Sequence[tuple],
) -> Tuple[np.ndarray, np.ndarray]:
    """Activity matrix + final two value rows of a memoised vector run.

    Activity row ``a`` is an elementwise function of value rows ``a``
    and ``a + 1``, so activity rows inherit the value rows' periodicity:
    they are computed once over the reconstructed prefix and *tiled*
    (gathered) for the periodic suffix — O(period) kernel work no
    matter how many cycles were requested, with float-identical rows
    because tiled entries are copies of prefix entries computed from
    identical inputs.
    """
    values, last, start, period = _vector_prefix(
        init_row, core_rows, repeat, cycles, core_wires, kernels,
        slot_data, slot_ragged, depth,
    )
    prefix = _activity_from_values(values, last, specs)
    if cycles > last:
        # Suffix row ``a`` equals prefix row ``start + (a - start) %
        # period``, and ``last - start`` is an exact multiple of the
        # period, so the suffix is whole repetitions of the block
        # ``prefix[start:start + period]`` — written with one broadcast
        # copy (block memcpy) instead of a fancy-index gather, which is
        # what keeps long memoised runs memory-bandwidth bound.
        matrix = np.empty((cycles,) + prefix.shape[1:], dtype=prefix.dtype)
        matrix[:last] = prefix
        block = prefix[start:start + period]
        remaining = cycles - last
        reps = remaining // period
        if reps:
            matrix[last:last + reps * period].reshape(
                (reps, period) + prefix.shape[1:]
            )[:] = block
        tail = remaining - reps * period
        if tail:
            matrix[last + reps * period:] = block[:tail]
    else:
        matrix = prefix

    def value_row(row: int) -> np.ndarray:
        if row <= last:
            return values[row]
        return values[start + (row - start) % period]

    last_two = np.stack([value_row(cycles - 1), value_row(cycles)])
    return matrix, last_two


def _lane_slot(
    value: object, kind: str, uniform_flag: Optional[bool], lane: int
) -> object:
    """Resolve one batch data slot to a single lane's scalar view."""
    if kind == "const":
        return value[lane]
    if kind == "table" or kind == "ttable":
        return value if uniform_flag else value[lane]
    return None  # "ttname": only read by core transition-table checks


class CompiledNetlist:
    """A netlist lowered to a flat, table-driven program.

    Produced by :func:`compile_netlist`; exposes the same ``run`` /
    ``wire_sequence`` interface as :class:`InterpretedEngine` and keeps
    the owning :class:`~repro.hdl.netlist.Netlist` object's state in
    sync after every run, so compiled and interpreted runs can be
    interleaved freely (``reset=False`` continues where either left off).
    Engines whose :attr:`shape_key` is not ``None`` can additionally be
    executed many-at-a-time through :func:`run_batch`.
    """

    name = "compiled"

    def __init__(self, netlist: Netlist, lowering: _Lowering):
        self.netlist = netlist
        self.channels: Tuple[Channel, ...] = tuple(lowering.channels)
        self.structural_key: Optional[str] = lowering.fingerprint()
        #: Structure modulo per-device data: netlists sharing a shape
        #: key ride in one batched execution.  ``None`` when the
        #: netlist cannot be batch-executed.
        self.shape_key: Optional[str] = None
        self.batch_plan: Optional[tuple] = None
        self.batch_lane: Optional[_BatchLane] = None
        if lowering.batchable:
            self.shape_key, self.batch_plan, self.batch_lane = (
                lowering.batch_metadata(netlist.combinational_order())
            )
        self._lowering: Optional[_Lowering] = lowering
        self._wires = lowering.wires
        self._index = lowering.index
        self._registers = lowering.registers
        self._ports = lowering.ports
        self._specs = lowering.activity_specs
        self._slot_kinds = tuple(lowering.slot_kinds)
        self._slot_values = tuple(lowering.slot_values)
        self._settle = None
        self._run = None
        self._run_memo = None
        self._rrun = None
        self._rrun_memo = None
        self._memo_ok = not lowering.ports
        #: Vectorisation policy: ``"auto"`` uses the cycle-axis kernels
        #: when the plan reconstructs at least one computed wire,
        #: ``True`` forces them, ``False`` pins the scalar generated
        #: loop (the oracle the vectorised tier is tested against).
        self.vectorise: object = "auto"
        self._vector_plan: Optional[_VectorPlan] = None
        self._vector_slots: Optional[Tuple[tuple, tuple]] = None
        #: Invalidation token: the owning netlist's compile generation
        #: at lowering time; executing after any component bumped its
        #: generation raises :class:`CompileError`.
        self._compile_generation = netlist.compile_generation
        #: True when :meth:`_ensure_program` found the step program in
        #: the process-wide cache instead of generating it.
        self.program_shared = False

    def _check_generation(self) -> None:
        """Refuse to execute a program compiled from mutated components."""
        current = self.netlist.compile_generation
        if current != self._compile_generation:
            raise CompileError(
                f"netlist {self.netlist.name!r} was modified after "
                f"compilation (compile generation {current} != "
                f"{self._compile_generation}); recompile it"
            )

    def _ensure_program(self) -> None:
        """Attach the step program on first actual execution.

        Fingerprintable netlists consult the process-wide program cache
        first: a fleet of structurally identical netlists generates and
        ``exec``-compiles the program once and shares the functions
        (they are pure in their arguments, so sharing is safe).
        """
        self._check_generation()
        if self._run is not None:
            return
        key = self.structural_key
        if key is not None:
            cached = _PROGRAM_CACHE.get(key)
            if cached is not None:
                _PROGRAM_CACHE.move_to_end(key)
                (
                    self.source, self._settle, self._run, self._run_memo,
                    self._rrun, self._rrun_memo, self._vector_plan,
                ) = cached
                self.program_shared = True
                self._lowering = None
                return
        lowering = self._lowering
        lowering.generate_program()
        self.source: str = lowering.source
        self._settle = lowering.namespace["_settle"]
        self._run = lowering.namespace["_run"]
        self._run_memo = lowering.namespace["_run_memo"]
        self._rrun = lowering.namespace["_rrun"]
        self._rrun_memo = lowering.namespace["_rrun_memo"]
        self._vector_plan = lowering.vector_plan
        self._lowering = None
        if key is not None:
            _PROGRAM_CACHE[key] = (
                self.source, self._settle, self._run, self._run_memo,
                self._rrun, self._rrun_memo, self._vector_plan,
            )
            while len(_PROGRAM_CACHE) > PROGRAM_CACHE_MAX:
                _PROGRAM_CACHE.popitem(last=False)

    # -- execution ---------------------------------------------------------

    def _baseline(self, reset: bool) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Initial settled row + per-port stimulus offsets."""
        if reset:
            values = [wire._initial for wire in self._wires]
            for register in self._registers:
                values[self._index[id(register.q)]] = register.reset_value
            return self._settle(tuple(values)), (0,) * len(self._ports)
        return (
            tuple(wire.value for wire in self._wires),
            tuple(port._cycle for port in self._ports),
        )

    def _simulate(self, cycles: int, reset: bool) -> np.ndarray:
        """Value matrix ``(cycles + 1, n_wires)``: row 0 is the baseline."""
        self._ensure_program()
        init, offsets = self._baseline(reset)
        runner = (
            self._run_memo
            if self._memo_ok and cycles >= MEMO_MIN_CYCLES
            else self._run
        )
        rows, repeat = runner(cycles, init, offsets)
        base = np.array(rows, dtype=np.uint64)
        if base.ndim == 1:  # zero-wire netlist
            base = base.reshape(len(rows), 0)
        if repeat is None:
            values = base
        else:
            # rows[len(rows)] would equal rows[repeat]: the design
            # re-entered a previous state.  Tile the periodic suffix.
            period = len(rows) - repeat
            missing = cycles + 1 - len(rows)
            tiled = base[repeat + (np.arange(missing) % period)]
            values = np.concatenate([base, tiled], axis=0)
        self._write_back(values, offsets, cycles)
        return values

    def _write_back(
        self, values: np.ndarray, offsets: Tuple[int, ...], cycles: int
    ) -> None:
        """Mirror the run's final state onto the netlist objects."""
        last = values[-1]
        prev = values[-2] if len(values) > 1 else values[-1]
        for i, wire in enumerate(self._wires):
            wire.value = int(last[i])
            wire.previous = int(prev[i])
        for register in self._registers:
            q = self._index[id(register.q)]
            register._captured = int(last[q])
            register._last_toggles = int(last[q] ^ prev[q]).bit_count()
        for port, offset in zip(self._ports, offsets):
            port._cycle = offset + cycles

    # -- activity ----------------------------------------------------------

    def _activity_matrix(self, values: np.ndarray, cycles: int) -> np.ndarray:
        return _activity_from_values(values, cycles, self._specs)

    # -- cycle-axis vectorised execution -----------------------------------

    def _vector_active(self) -> bool:
        """Whether :meth:`run` should use the vectorised tier."""
        if self.vectorise is False:
            return False
        self._ensure_program()
        if self.vectorise == "auto":
            return self._vector_plan.profitable
        return True

    @property
    def tier(self) -> str:
        """Execution tier :meth:`run` selects: ``"vectorised"`` or
        ``"scalar"`` (the generated per-cycle loop)."""
        return "vectorised" if self._vector_active() else "scalar"

    def _vector_slot_data(self) -> Tuple[tuple, tuple]:
        """Kernel-ready ``(slot data, slot raggedness)`` for this netlist.

        Table slots become uint64 arrays for gather kernels; constants
        become plain ints; transition-table slots stay ``None`` (those
        ops are always core).  A scalar execution is never ragged.
        """
        if self._vector_slots is None:
            data: List[object] = []
            for kind, value in zip(self._slot_kinds, self._slot_values):
                if kind == "const":
                    data.append(int(value))
                elif kind == "table":
                    data.append(np.array(value, dtype=np.uint64))
                else:  # "ttable" / "ttname": consumed by core statements
                    data.append(None)
            self._vector_slots = (tuple(data), (False,) * len(data))
        return self._vector_slots

    def _vector_arrays(
        self, cycles: int, reset: bool
    ) -> Tuple[_VectorPlan, np.ndarray, np.ndarray, Optional[Tuple[int, int]],
               Tuple[int, ...]]:
        """Run phase 1: the reduced scalar loop over the core residue.

        Returns the plan, the full settled baseline row, the stepped
        ``(rows, n_core)`` core matrix, the core re-entry ``(j, t1)``
        (``None`` when the run was fully stepped) and the port offsets.
        """
        self._ensure_program()
        plan = self._vector_plan
        init, offsets = self._baseline(reset)
        core_init = tuple(init[i] for i in plan.core_wires)
        runner = (
            self._rrun_memo
            if self._memo_ok and cycles >= MEMO_MIN_CYCLES
            else self._rrun
        )
        rows, repeat = runner(cycles, core_init, offsets)
        core_rows = np.array(rows, dtype=np.uint64)
        if core_rows.ndim == 1:  # zero core wires
            core_rows = core_rows.reshape(len(rows), 0)
        if repeat is not None:
            repeat = (repeat, len(rows))
        init_row = np.array(init, dtype=np.uint64)
        return plan, init_row, core_rows, repeat, offsets

    def _vector_full_values(self, cycles: int, reset: bool) -> np.ndarray:
        """Complete ``(cycles + 1, n_wires)`` matrix via the vector tier.

        Memoised runs expand the periodic suffix into real rows — this
        backs :meth:`wire_sequence`, whose output is O(cycles) anyway.
        Also mirrors the final state back onto the netlist objects.
        """
        plan, init_row, core_rows, repeat, offsets = self._vector_arrays(
            cycles, reset
        )
        slot_data, slot_ragged = self._vector_slot_data()
        if repeat is None:
            values = _vector_reconstruct(
                init_row, core_rows, plan.core_wires, plan.kernels,
                slot_data, slot_ragged, None,
            )
        else:
            values, last, start, period = _vector_prefix(
                init_row, core_rows, repeat, cycles, plan.core_wires,
                plan.kernels, slot_data, slot_ragged, plan.depth,
            )
            if cycles > last:
                suffix = start + (np.arange(last + 1, cycles + 1) - start) % period
                values = np.concatenate([values, values[suffix]], axis=0)
        self._write_back(values, offsets, cycles)
        return values

    def _run_vectorised(self, cycles: int, reset: bool) -> ActivityTrace:
        """One vectorised-tier run: reduced stepping + kernel expansion."""
        plan, init_row, core_rows, repeat, offsets = self._vector_arrays(
            cycles, reset
        )
        slot_data, slot_ragged = self._vector_slot_data()
        if repeat is None:
            values = _vector_reconstruct(
                init_row, core_rows, plan.core_wires, plan.kernels,
                slot_data, slot_ragged, None,
            )
            matrix = _activity_from_values(values, cycles, self._specs)
            self._write_back(values, offsets, cycles)
        else:
            matrix, last_two = _vector_memo_trace(
                init_row, core_rows, repeat, cycles, plan.core_wires,
                plan.kernels, slot_data, slot_ragged, plan.depth,
                self._specs,
            )
            self._write_back(last_two, offsets, cycles)
        return ActivityTrace(self.channels, matrix)

    # -- public API --------------------------------------------------------

    def run(self, cycles: int, reset: bool = True) -> ActivityTrace:
        """Simulate ``cycles`` clock periods and return the activity."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        if self._vector_active():
            return self._run_vectorised(cycles, reset)
        values = self._simulate(cycles, reset)
        return ActivityTrace(self.channels, self._activity_matrix(values, cycles))

    def wire_sequence(self, wire: Wire, cycles: int) -> List[int]:
        """Settled values of one wire after each clock edge (with reset)."""
        index = self._index.get(id(wire))
        if index is None:
            raise KeyError(
                f"wire {wire.name!r} is not part of netlist {self.netlist.name!r}"
            )
        cycles = max(cycles, 0)
        if self._vector_active():
            values = self._vector_full_values(cycles, reset=True)
        else:
            values = self._simulate(cycles, reset=True)
        return [int(v) for v in values[1:, index]]


CyclesLike = Union[int, Sequence[int]]


def _lane_cycles(engines: Sequence, cycles: CyclesLike) -> List[int]:
    """Normalise one shared or per-lane cycle counts into a list."""
    if isinstance(cycles, (int, np.integer)):
        lane_cycles = [int(cycles)] * len(engines)
    else:
        lane_cycles = [int(c) for c in cycles]
        if len(lane_cycles) != len(engines):
            raise ValueError(
                f"got {len(lane_cycles)} cycle counts for "
                f"{len(engines)} engines"
            )
    for count in lane_cycles:
        if count <= 0:
            raise ValueError(f"cycles must be positive, got {count}")
    return lane_cycles


def run_batch(
    engines: Sequence[CompiledNetlist],
    cycles: CyclesLike,
    reset: bool = True,
    vectorise: object = "auto",
) -> List[ActivityTrace]:
    """Execute N shape-compatible compiled netlists in one batched run.

    All engines must share a :attr:`~CompiledNetlist.shape_key`;
    ``cycles`` is one count for every lane or a per-lane sequence
    (ragged batches run to the longest lane and slice each lane's
    prefix).  Returns one :class:`~repro.hdl.activity.ActivityTrace`
    per engine, in order, and writes each lane's final state back onto
    its netlist objects — **byte-identical** to calling
    ``engine.run(cycles, reset)`` on every engine separately, for any
    batch size (including 1) and any lane order.

    The speedup comes from amortising the Python step loop: one
    iteration advances every lane via ``(batch,)`` vector operations,
    per-lane constants/tables are indexed by lane, and runs past
    :data:`MEMO_MIN_CYCLES` detect each lane's state re-entry
    independently and tile the periodic suffix instead of stepping.

    ``vectorise`` composes the cycle-axis kernel plan with the batch
    axis: ``"auto"`` (the default) steps only the sequential residue
    per cycle when the plan reconstructs something, then rebuilds all
    remaining wire columns for every ``cycle × lane`` at once; ``True``
    forces that mode, ``False`` pins the full per-cycle batch loop.
    All three settings produce identical trace bytes.
    """
    engines = list(engines)
    if not engines:
        raise ValueError("run_batch needs at least one engine")
    shape_key = engines[0].shape_key
    for engine in engines:
        engine._check_generation()
        if engine.shape_key is None:
            raise CompileError(
                f"netlist {engine.netlist.name!r} cannot be batch-executed "
                "(input ports, opaque lookup callables or very wide "
                "transition tables)"
            )
        if engine.shape_key != shape_key:
            raise ValueError(
                f"netlist {engine.netlist.name!r} has a different shape "
                "than the first engine; group lanes by shape_key first"
            )
    lane_cycles = _lane_cycles(engines, cycles)
    batch = len(engines)
    n_wires, regs, ops, slot_kinds = engines[0].batch_plan
    lanes = [engine.batch_lane for engine in engines]
    partition: Optional[_VectorPlan] = None
    if vectorise is not False:
        candidate = _BATCH_PLAN_CACHE.get(shape_key)
        if candidate is None:
            candidate = _vector_partition(n_wires, regs, ops)
            _BATCH_PLAN_CACHE[shape_key] = candidate
            while len(_BATCH_PLAN_CACHE) > PROGRAM_CACHE_MAX:
                _BATCH_PLAN_CACHE.popitem(last=False)
        else:
            _BATCH_PLAN_CACHE.move_to_end(shape_key)
        if vectorise is True or candidate.profitable:
            partition = candidate

    # Per-slot data: uniform table slots collapse to one 1-D array (and
    # a cheaper generated indexing mode); everything else stacks per lane.
    uniform: List[Optional[bool]] = []
    data: List[object] = []
    for slot, kind in enumerate(slot_kinds):
        values = [lane.slot_values[slot] for lane in lanes]
        if kind == "const":
            uniform.append(None)
            data.append(np.array(values, dtype=np.uint64))
        elif kind == "table":
            same = all(v == values[0] for v in values[1:])
            uniform.append(same)
            data.append(
                np.array(values[0] if same else values, dtype=np.uint64)
            )
        elif kind == "ttable":
            same = all(v == values[0] for v in values[1:])
            uniform.append(same)
            if same:
                data.append(_dense_transition_table(values[0]))
            else:
                data.append(
                    np.stack([_dense_transition_table(v) for v in values])
                )
        else:  # "ttname"
            uniform.append(None)
            data.append(tuple(values))
    data.append(np.arange(batch))
    data_tuple = tuple(data)
    settle, run = _batch_program(
        shape_key, engines[0].batch_plan, tuple(uniform), partition
    )

    # Baseline: per-lane power-on (+ reset) values settled in one pass,
    # or each lane's current wire values for a continuation run.
    if reset:
        init = np.array([lane.initials for lane in lanes], dtype=np.uint64).T
        for reg_slot, (_d, q) in enumerate(regs):
            init[q] = np.array(
                [lane.resets[reg_slot] for lane in lanes], dtype=np.uint64
            )
        state = settle(init, data_tuple)
    else:
        state = np.array(
            [[w.value for w in engine._wires] for engine in engines],
            dtype=np.uint64,
        ).T

    # The settled full baseline, kept for phase-2 reconstruction; the
    # step loop only records ``record`` columns (all wires without a
    # partition, the core residue with one).
    state0 = np.ascontiguousarray(np.asarray(state))
    if partition is None:
        n_record = n_wires
        record0 = state0
    else:
        record_index = np.asarray(partition.core_wires, dtype=np.intp)
        n_record = len(partition.core_wires)
        record0 = state0[record_index]

    max_cycles = max(lane_cycles)
    repeats: List[Optional[Tuple[int, int]]] = [None] * batch
    if max_cycles < MEMO_MIN_CYCLES:
        values = np.empty((max_cycles + 1, n_record, batch), dtype=np.uint64)
        values[0] = record0
        run(max_cycles, state, values, data_tuple)
        stepped = max_cycles
    else:
        # Memoising run: step into a geometrically growing buffer (so
        # copying stays O(stepped) total, and memory tracks how far the
        # slowest lane actually stepped, not the requested cycles) and
        # scan for per-lane state re-entry at geometrically spaced
        # points (so the O(T log T) duplicate scans amortise to
        # O(T log T) overall rather than rescanning every chunk).
        # Scan timing never changes results: the first re-entry
        # (j, t1) is a property of the value rows, not of when we look.
        capacity = min(max_cycles, BATCH_MEMO_CHUNK)
        buffer = np.empty((capacity + 1, n_record, batch), dtype=np.uint64)
        buffer[0] = record0
        stepped = 0
        next_scan = BATCH_MEMO_CHUNK
        while stepped < max_cycles:
            if stepped == capacity:
                capacity = min(max_cycles, capacity * 2)
                grown = np.empty(
                    (capacity + 1, n_record, batch), dtype=np.uint64
                )
                grown[:stepped + 1] = buffer[:stepped + 1]
                buffer = grown
            count = min(
                BATCH_MEMO_CHUNK, max_cycles - stepped, capacity - stepped
            )
            state = run(
                count, state, buffer[stepped:stepped + count + 1], data_tuple
            )
            stepped += count
            if stepped < next_scan and stepped < max_cycles:
                continue
            next_scan = stepped * 2
            all_resolved = True
            for lane_index in range(batch):
                if (
                    repeats[lane_index] is None
                    and lane_cycles[lane_index] > stepped
                ):
                    repeats[lane_index] = _first_state_reentry(
                        buffer[:stepped + 1, :, lane_index]
                    )
                    if repeats[lane_index] is None:
                        all_resolved = False
            if all_resolved:
                break
        values = buffer[:stepped + 1]

    traces: List[ActivityTrace] = []
    slot_ragged = tuple(u is False for u in uniform)
    if stepped == max_cycles:
        # Every lane was stepped in full: expand the core recording (a
        # no-op without a partition), one batched activity pass, then
        # per-lane prefix slices for ragged cycle counts.
        if partition is None:
            full = values
        else:
            full = _vector_reconstruct(
                state0, values, partition.core_wires, partition.kernels,
                data_tuple, slot_ragged, data_tuple[-1],
            )
        params = _lane_act_params(engines[0]._specs, lanes)
        activity = _activity_from_values(
            full, max_cycles, engines[0]._specs, params
        )
        for lane_index, engine in enumerate(engines):
            count = lane_cycles[lane_index]
            matrix = activity[:count, :, lane_index].copy()
            engine._write_back(
                np.ascontiguousarray(full[count - 1:count + 1, :, lane_index]),
                (),
                count,
            )
            traces.append(ActivityTrace(engine.channels, matrix))
    elif partition is None:
        # Memoised early stop: assemble each lane's full value matrix
        # (stepped prefix + tiled periodic suffix) and reuse the shared
        # activity kernel per lane.
        for lane_index, engine in enumerate(engines):
            count = lane_cycles[lane_index]
            lane_values = np.ascontiguousarray(values[:, :, lane_index])
            if count + 1 > lane_values.shape[0]:
                j, t1 = repeats[lane_index]
                period = t1 - j
                missing = count + 1 - lane_values.shape[0]
                absolute = stepped + 1 + np.arange(missing)
                lane_values = np.concatenate(
                    [lane_values, lane_values[j + (absolute - t1) % period]],
                    axis=0,
                )
            else:
                lane_values = lane_values[:count + 1]
            matrix = _activity_from_values(lane_values, count, engine._specs)
            engine._write_back(lane_values[-2:], (), count)
            traces.append(ActivityTrace(engine.channels, matrix))
    else:
        # Memoised early stop with a kernel plan: each lane expands its
        # own core recording — tiling the periodic activity suffix for
        # lanes that stopped early, plain reconstruction for lanes whose
        # requested cycles fit in the stepped prefix.
        no_ragged = (False,) * len(slot_kinds)
        for lane_index, engine in enumerate(engines):
            count = lane_cycles[lane_index]
            init_lane = np.ascontiguousarray(state0[:, lane_index])
            core_lane = np.ascontiguousarray(values[:, :, lane_index])
            lane_slots = tuple(
                _lane_slot(data_tuple[s], kind, uniform[s], lane_index)
                for s, kind in enumerate(slot_kinds)
            )
            if count > stepped:
                matrix, last_two = _vector_memo_trace(
                    init_lane, core_lane, repeats[lane_index], count,
                    partition.core_wires, partition.kernels, lane_slots,
                    no_ragged, partition.depth, engine._specs,
                )
                engine._write_back(last_two, (), count)
            else:
                lane_full = _vector_reconstruct(
                    init_lane, core_lane[:count + 1], partition.core_wires,
                    partition.kernels, lane_slots, no_ragged, None,
                )
                matrix = _activity_from_values(lane_full, count, engine._specs)
                engine._write_back(lane_full[-2:], (), count)
            traces.append(ActivityTrace(engine.channels, matrix))
    return traces


def _lane_act_params(
    specs: Sequence[tuple], lanes: Sequence[_BatchLane]
) -> Optional[List[Optional[np.ndarray]]]:
    """Per-spec activity-parameter overrides for a batch.

    ``None`` entries keep the (shared) scalar parameter already baked
    into the spec; lanes that disagree get a ``(batch,)`` float array
    that broadcasts across the cycle axis.
    """
    overrides: List[Optional[np.ndarray]] = []
    any_override = False
    for column in range(len(specs)):
        values = [lane.act_params[column] for lane in lanes]
        if values[0] is None or all(v == values[0] for v in values[1:]):
            overrides.append(None)
        else:
            overrides.append(np.array(values, dtype=np.float64))
            any_override = True
    return overrides if any_override else None


class InterpretedEngine:
    """The original object-walking simulation loop, kept as the oracle.

    One shared cycle generator backs both activity recording and wire
    sampling, so the two code paths cannot drift apart.
    """

    name = "interpreted"
    structural_key: Optional[str] = None
    shape_key: Optional[str] = None

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._input_ports = [
            c for c in netlist.components if isinstance(c, InputPort)
        ]

    def _discover_channels(self) -> List[Channel]:
        """One activity channel per component that reports activity."""
        channels: List[Channel] = []
        for component in self.netlist.components:
            for event in component.activity():
                channels.append(Channel(event.component, event.kind))
        return channels

    def _advance(self, cycles: int):
        """Drive the netlist one settled clock period per iteration."""
        comb_order = self.netlist.combinational_order()
        sequential = self.netlist.sequential_components
        wires = list(self.netlist.wires.values())
        for cycle in range(cycles):
            for wire in wires:
                wire.latch_previous()
            for register in sequential:
                register.capture()
            for register in sequential:
                register.commit()
            for port in self._input_ports:
                port.advance_cycle()
            for component in comb_order:
                component.evaluate()
            yield cycle

    def run(self, cycles: int, reset: bool = True) -> ActivityTrace:
        """Simulate ``cycles`` clock periods and return the activity."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        if reset:
            self.netlist.reset()
        channels = self._discover_channels()
        index_of: Dict[Channel, int] = {c: i for i, c in enumerate(channels)}
        matrix = np.zeros((cycles, len(channels)))
        components = self.netlist.components
        for cycle in self._advance(cycles):
            for component in components:
                for event in component.activity():
                    channel = Channel(event.component, event.kind)
                    matrix[cycle, index_of[channel]] += event.amount
        return ActivityTrace(channels, matrix)

    def wire_sequence(self, wire: Wire, cycles: int) -> List[int]:
        """Settled values of one wire after each clock edge (with reset)."""
        self.netlist.reset()
        return [wire.value for _ in self._advance(cycles)]


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Lower a validated netlist into a :class:`CompiledNetlist`.

    Raises :class:`CompileError` when the netlist contains constructs
    the lowering pass cannot prove equivalent (custom component types,
    foreign wires, buses wider than :data:`MAX_WIRE_WIDTH`).
    """
    netlist.validate()
    lowering = _Lowering(netlist)
    lowering.lower()
    return CompiledNetlist(netlist, lowering)


__all__ = [
    "CompileError",
    "CompiledNetlist",
    "InterpretedEngine",
    "compile_netlist",
    "run_batch",
    "clear_program_cache",
    "program_cache_size",
    "batch_program_cache_size",
    "MAX_TABLE_BITS",
    "MAX_WIRE_WIDTH",
    "MEMO_MIN_CYCLES",
    "BATCH_MEMO_CHUNK",
    "PROGRAM_CACHE_MAX",
]
