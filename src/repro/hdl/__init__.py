"""Digital-logic substrate: wires, components, netlists and a
compile-then-execute cycle-accurate simulator that records
per-component switching activity.

This package stands in for the paper's Altera Cyclone III FPGAs: the
verification scheme only consumes switching activity, which the
simulator records exactly.  Netlists are assembled from component
objects (:mod:`repro.hdl.component` and friends), validated by
:mod:`repro.hdl.netlist`, then *lowered* by :mod:`repro.hdl.engine`
into a flat, table-driven program — opcode/operand statements over
dense wire indices, register updates as simultaneous assignments, and
switching activity as vectorised Hamming weights over the recorded
wire-value matrix.  :class:`~repro.hdl.simulator.Simulator` fronts both
the compiled engine (default) and the original interpreted loop, which
is retained as a reference oracle; the two are bit-identical on every
supported netlist.
"""

from repro.hdl.activity import ActivityTrace, Channel
from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.component import (
    ACTIVITY_KINDS,
    ActivityEvent,
    CombinationalComponent,
    Component,
    KIND_CLOCK,
    KIND_COMB,
    KIND_IO,
    KIND_RAM,
    KIND_REGISTER,
    SequentialComponent,
)
from repro.hdl.engine import (
    CompiledNetlist,
    CompileError,
    InterpretedEngine,
    compile_netlist,
    run_batch,
)
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.register import DRegister
from repro.hdl.simulator import Simulator, simulate_batch
from repro.hdl.vcd import record_vcd, write_vcd
from repro.hdl.verilog import VerilogExportError, export_testbench, export_verilog
from repro.hdl.wires import Wire, bit, hamming_distance, hamming_weight, mask

__all__ = [
    "ActivityTrace",
    "Channel",
    "ActivityEvent",
    "ACTIVITY_KINDS",
    "KIND_REGISTER",
    "KIND_COMB",
    "KIND_RAM",
    "KIND_IO",
    "KIND_CLOCK",
    "Component",
    "CombinationalComponent",
    "SequentialComponent",
    "Constant",
    "XorArray",
    "Incrementer",
    "BinaryToGray",
    "GrayToBinary",
    "Mux2",
    "LookupLogic",
    "TransitionTable",
    "DRegister",
    "SyncROM",
    "OutputPort",
    "InputPort",
    "ClockTree",
    "Netlist",
    "NetlistError",
    "Simulator",
    "simulate_batch",
    "CompiledNetlist",
    "CompileError",
    "InterpretedEngine",
    "compile_netlist",
    "run_batch",
    "export_verilog",
    "export_testbench",
    "VerilogExportError",
    "record_vcd",
    "write_vcd",
    "Wire",
    "bit",
    "mask",
    "hamming_weight",
    "hamming_distance",
]
