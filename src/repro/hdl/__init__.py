"""Digital-logic substrate: wires, components, netlists and a
cycle-accurate simulator that records per-component switching activity.

This package stands in for the paper's Altera Cyclone III FPGAs: the
verification scheme only consumes switching activity, which the
simulator records exactly.
"""

from repro.hdl.activity import ActivityTrace, Channel
from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.component import (
    ACTIVITY_KINDS,
    ActivityEvent,
    CombinationalComponent,
    Component,
    KIND_CLOCK,
    KIND_COMB,
    KIND_IO,
    KIND_RAM,
    KIND_REGISTER,
    SequentialComponent,
)
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.register import DRegister
from repro.hdl.simulator import Simulator
from repro.hdl.vcd import record_vcd, write_vcd
from repro.hdl.verilog import VerilogExportError, export_testbench, export_verilog
from repro.hdl.wires import Wire, bit, hamming_distance, hamming_weight, mask

__all__ = [
    "ActivityTrace",
    "Channel",
    "ActivityEvent",
    "ACTIVITY_KINDS",
    "KIND_REGISTER",
    "KIND_COMB",
    "KIND_RAM",
    "KIND_IO",
    "KIND_CLOCK",
    "Component",
    "CombinationalComponent",
    "SequentialComponent",
    "Constant",
    "XorArray",
    "Incrementer",
    "BinaryToGray",
    "GrayToBinary",
    "Mux2",
    "LookupLogic",
    "TransitionTable",
    "DRegister",
    "SyncROM",
    "OutputPort",
    "InputPort",
    "ClockTree",
    "Netlist",
    "NetlistError",
    "Simulator",
    "export_verilog",
    "export_testbench",
    "VerilogExportError",
    "record_vcd",
    "write_vcd",
    "Wire",
    "bit",
    "mask",
    "hamming_weight",
    "hamming_distance",
]
