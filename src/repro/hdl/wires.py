"""Wires and bit-vector helpers for the digital-logic substrate.

A :class:`Wire` is a named bundle of ``width`` bits carrying an integer
value.  Components read and drive wires; the simulator tracks previous
values so switching activity (Hamming distance between consecutive
cycles) can be recorded — that activity is what drives the synthetic
power model in :mod:`repro.power`.
"""

from __future__ import annotations


def hamming_weight(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError(f"hamming_weight needs a non-negative int, got {value}")
    return bin(value).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two non-negative integers."""
    if a < 0 or b < 0:
        raise ValueError(f"hamming_distance needs non-negative ints, got {a}, {b}")
    return hamming_weight(a ^ b)


def bit(value: int, index: int) -> int:
    """Extract bit ``index`` (LSB = 0) of ``value``."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def mask(width: int) -> int:
    """All-ones mask for a ``width``-bit bus."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (1 << width) - 1


class Wire:
    """A named ``width``-bit signal.

    The simulator keeps both the current value and the value from the
    previous clock cycle so per-cycle toggle counts can be derived.
    """

    def __init__(self, name: str, width: int, initial: int = 0):
        if width <= 0:
            raise ValueError(f"wire {name!r}: width must be positive, got {width}")
        if not 0 <= initial <= mask(width):
            raise ValueError(
                f"wire {name!r}: initial value {initial} does not fit in {width} bits"
            )
        self.name = name
        self.width = width
        self.value = initial
        self.previous = initial
        self._initial = initial

    def drive(self, value: int) -> None:
        """Set the wire's current value, checking the bus width."""
        if not 0 <= value <= mask(self.width):
            raise ValueError(
                f"wire {self.name!r}: value {value} does not fit in {self.width} bits"
            )
        self.value = value

    def latch_previous(self) -> None:
        """Record the current value as the previous-cycle value."""
        self.previous = self.value

    def toggles(self) -> int:
        """Hamming distance between the current and previous values."""
        return hamming_distance(self.value, self.previous)

    def reset(self) -> None:
        """Restore the wire to its initial value."""
        self.value = self._initial
        self.previous = self._initial

    def __repr__(self) -> str:
        return f"Wire({self.name!r}, width={self.width}, value={self.value:#x})"
