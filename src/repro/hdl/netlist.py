"""Netlist assembly and structural validation.

A :class:`Netlist` owns wires and components, checks that every wire
has exactly one driver, and topologically orders the combinational
components so a single evaluation pass per cycle settles all logic.
Registers break combinational cycles, exactly as in synchronous RTL.

The validated topological order is also the instruction order the
lowering pass in :mod:`repro.hdl.engine` compiles into its flat
step program, so validation here is the single source of truth for
both the interpreted and the compiled execution engines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hdl.component import (
    CombinationalComponent,
    Component,
    SequentialComponent,
)
from repro.hdl.wires import Wire


class NetlistError(Exception):
    """Structural problem in a netlist (multiple drivers, comb. loop...)."""


class Netlist:
    """A named collection of wires and components forming one design."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("netlist name must be non-empty")
        self.name = name
        self.wires: Dict[str, Wire] = {}
        self.components: List[Component] = []
        self._component_names: Dict[str, Component] = {}
        self._comb_order: Optional[List[CombinationalComponent]] = None

    def wire(self, name: str, width: int, initial: int = 0) -> Wire:
        """Create and register a new wire."""
        if name in self.wires:
            raise NetlistError(f"duplicate wire name {name!r}")
        created = Wire(name, width, initial)
        self.wires[name] = created
        return created

    def add(self, component: Component) -> Component:
        """Register a component; returns it for fluent assembly."""
        if component.name in self._component_names:
            raise NetlistError(f"duplicate component name {component.name!r}")
        self._component_names[component.name] = component
        self.components.append(component)
        self._comb_order = None
        return component

    def remove(self, name: str) -> Component:
        """Remove a component by name; returns it.

        The component's wires stay registered, so the caller can attach
        a replacement driver (e.g. swapping an imported design's
        :class:`~repro.hdl.io.InputPort` pads for exerciser logic).
        """
        if name not in self._component_names:
            raise KeyError(f"no component named {name!r} in netlist {self.name!r}")
        component = self._component_names.pop(name)
        self.components.remove(component)
        self._comb_order = None
        return component

    def component(self, name: str) -> Component:
        """Fetch a component by name."""
        if name not in self._component_names:
            raise KeyError(f"no component named {name!r} in netlist {self.name!r}")
        return self._component_names[name]

    @property
    def compile_generation(self) -> int:
        """Invalidation token for compiled programs.

        The sum of every component's compile generation: any component
        calling :meth:`~repro.hdl.component.Component.invalidate_compiled`
        changes it, which makes previously compiled
        :class:`~repro.hdl.engine.CompiledNetlist` programs refuse to
        run (they snapshot this value at compile time).
        """
        return sum(c._compile_generation for c in self.components)

    @property
    def sequential_components(self) -> List[SequentialComponent]:
        return [c for c in self.components if isinstance(c, SequentialComponent)]

    @property
    def combinational_components(self) -> List[CombinationalComponent]:
        return [c for c in self.components if isinstance(c, CombinationalComponent)]

    def _check_single_drivers(self) -> None:
        drivers: Dict[int, str] = {}
        for component in self.components:
            for wire in component.output_wires:
                key = id(wire)
                if key in drivers:
                    raise NetlistError(
                        f"wire {wire.name!r} driven by both "
                        f"{drivers[key]!r} and {component.name!r}"
                    )
                drivers[key] = component.name

    def combinational_order(self) -> List[CombinationalComponent]:
        """Topologically sort the combinational components.

        Sequential outputs (register Q) are sources; a cycle among
        combinational components is a structural error.
        """
        if self._comb_order is not None:
            return self._comb_order
        self._check_single_drivers()

        comb = self.combinational_components
        driver_of: Dict[int, CombinationalComponent] = {}
        for component in comb:
            for wire in component.output_wires:
                driver_of[id(wire)] = component

        dependents: Dict[str, List[CombinationalComponent]] = {
            c.name: [] for c in comb
        }
        in_degree: Dict[str, int] = {c.name: 0 for c in comb}
        for component in comb:
            for wire in component.input_wires:
                upstream = driver_of.get(id(wire))
                if upstream is not None and upstream is not component:
                    dependents[upstream.name].append(component)
                    in_degree[component.name] += 1

        ready = [c for c in comb if in_degree[c.name] == 0]
        ordered: List[CombinationalComponent] = []
        while ready:
            component = ready.pop(0)
            ordered.append(component)
            for downstream in dependents[component.name]:
                in_degree[downstream.name] -= 1
                if in_degree[downstream.name] == 0:
                    ready.append(downstream)
        if len(ordered) != len(comb):
            stuck = sorted(name for name, deg in in_degree.items() if deg > 0)
            raise NetlistError(
                f"combinational loop in netlist {self.name!r} involving: {stuck}"
            )
        self._comb_order = ordered
        return ordered

    def validate(self) -> None:
        """Run all structural checks (driver uniqueness, no comb. loops)."""
        self.combinational_order()

    def reset(self) -> None:
        """Return every wire and component to its power-on state."""
        for wire in self.wires.values():
            wire.reset()
        for component in self.components:
            component.reset()
        for component in self.combinational_order():
            component.evaluate()
        for wire in self.wires.values():
            wire.latch_previous()

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, wires={len(self.wires)}, "
            f"components={len(self.components)})"
        )
