"""Clocked storage elements.

:class:`DRegister` models a bank of D flip-flops: at each clock edge it
captures the value of its ``d`` wire and exposes it on ``q``.  Register
switching (the Hamming distance between consecutive states) is the
dominant, best-understood contributor to CMOS dynamic power and is the
signal the paper's verification scheme ultimately reads.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hdl.component import ActivityEvent, KIND_REGISTER, SequentialComponent
from repro.hdl.wires import Wire, hamming_distance, mask


class DRegister(SequentialComponent):
    """A ``width``-bit D register with synchronous load and reset value."""

    def __init__(self, name: str, d: Wire, q: Wire, reset_value: int = 0):
        super().__init__(name)
        if d.width != q.width:
            raise ValueError(f"{name}: D/Q width mismatch ({d.width} vs {q.width})")
        if not 0 <= reset_value <= mask(q.width):
            raise ValueError(
                f"{name}: reset value {reset_value} does not fit in {q.width} bits"
            )
        self.d = d
        self.q = q
        self.reset_value = reset_value
        self._captured = reset_value
        self._last_toggles = 0
        self.q.drive(reset_value)

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.d,)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.q,)

    @property
    def width(self) -> int:
        return self.q.width

    def reset(self) -> None:
        self._captured = self.reset_value
        self._last_toggles = 0
        self.q.drive(self.reset_value)
        self.q.latch_previous()

    def capture(self) -> None:
        """Sample D at the clock edge and remember the resulting toggles."""
        self._captured = self.d.value
        self._last_toggles = hamming_distance(self.q.value, self._captured)

    def commit(self) -> None:
        """Expose the captured value on Q."""
        self.q.drive(self._captured)

    def activity(self) -> List[ActivityEvent]:
        return [ActivityEvent(self.name, KIND_REGISTER, float(self._last_toggles))]

    def activity_kinds(self):
        return (KIND_REGISTER,)
