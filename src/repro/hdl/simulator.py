"""Cycle-accurate simulation of a netlist with activity recording.

Each simulated cycle models one clock period of the synchronous design:

1. all wires latch their settled values as "previous",
2. every register samples its D input (recording the Hamming distance
   it is about to switch through) and exposes the new Q,
3. input ports advance their stimulus,
4. combinational logic settles in topological order,
5. every component reports its switching activity for the cycle.

The recorded :class:`~repro.hdl.activity.ActivityTrace` is the raw
material the power chain turns into oscilloscope-like traces.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.hdl.activity import ActivityTrace, Channel
from repro.hdl.io import InputPort
from repro.hdl.netlist import Netlist


class Simulator:
    """Runs a netlist for a number of cycles and records activity."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._input_ports = [
            c for c in netlist.components if isinstance(c, InputPort)
        ]

    def _discover_channels(self) -> List[Channel]:
        """One activity channel per component that reports activity."""
        channels: List[Channel] = []
        for component in self.netlist.components:
            for event in component.activity():
                channels.append(Channel(event.component, event.kind))
        return channels

    def run(self, cycles: int, reset: bool = True) -> ActivityTrace:
        """Simulate ``cycles`` clock periods and return the activity.

        With ``reset=True`` (the default) the design starts from its
        power-on state — the paper places all FSMs "in the exact same
        state before starting any power consumption measurements".
        """
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        if reset:
            self.netlist.reset()

        channels = self._discover_channels()
        index_of: Dict[Channel, int] = {c: i for i, c in enumerate(channels)}
        matrix = np.zeros((cycles, len(channels)))

        comb_order = self.netlist.combinational_order()
        sequential = self.netlist.sequential_components

        for cycle in range(cycles):
            for wire in self.netlist.wires.values():
                wire.latch_previous()
            for register in sequential:
                register.capture()
            for register in sequential:
                register.commit()
            for port in self._input_ports:
                port.advance_cycle()
            for component in comb_order:
                component.evaluate()
            for component in self.netlist.components:
                for event in component.activity():
                    channel = Channel(event.component, event.kind)
                    matrix[cycle, index_of[channel]] += event.amount

        return ActivityTrace(channels, matrix)

    def state_sequence(self, register_name: str, cycles: int) -> List[int]:
        """Convenience: the Q values of one register over ``cycles`` cycles.

        Runs a fresh simulation (with reset) and samples the register
        after each clock edge; useful for functional tests.
        """
        register = self.netlist.component(register_name)
        q_wire = register.output_wires[0]
        self.netlist.reset()
        comb_order = self.netlist.combinational_order()
        sequential = self.netlist.sequential_components
        sequence: List[int] = []
        for cycle in range(cycles):
            for wire in self.netlist.wires.values():
                wire.latch_previous()
            for reg in sequential:
                reg.capture()
            for reg in sequential:
                reg.commit()
            for port in self._input_ports:
                port.advance_cycle()
            for component in comb_order:
                component.evaluate()
            sequence.append(q_wire.value)
        return sequence
