"""Cycle-accurate simulation front-end (compile-then-execute).

:class:`Simulator` keeps the public ``run`` / ``state_sequence`` API of
the original object-walking loop but delegates to one of two engines
from :mod:`repro.hdl.engine`:

* ``"compiled"`` — the netlist is lowered once into a flat,
  table-driven program: a code-generated step function advances all
  registers and combinational logic per clock, and switching activity
  is accumulated into the ``(cycles, channels)`` matrix with
  vectorised NumPy Hamming weights, with zero per-cycle object
  allocation.  This choice pins the *scalar* generated loop — the
  oracle the vectorised tier is tested against.
* ``"vectorised"`` — the compiled engine's third tier: only the
  sequential residue (registers on feedback cycles, transition tables,
  ports and their fan-in) steps cycle by cycle; every feed-forward
  wire column is reconstructed for all cycles at once by numpy
  kernels.  Raises when the netlist cannot be compiled.
* ``"interpreted"`` — the original per-object loop, retained as a
  reference oracle.  ``tests/test_engine.py`` asserts bit-identical
  activity matrices between engines for every paper design.

``"auto"`` (the default) tries the compiled engine and lets it choose
the tier per netlist — vectorised when the kernel plan reconstructs at
least one computed wire, the scalar loop when the sequential residue
is the whole design — and silently falls back to the interpreted loop
for netlists the lowering pass does not support (custom component
classes, >63-bit buses, wires not registered in the netlist).  All
engines produce bit-identical activity; the choice is purely an
execution strategy.

Fleet-scale workloads use :func:`simulate_batch`: it groups many
simulators by the compiled engine's *shape key* and executes each
group in one vectorised :func:`~repro.hdl.engine.run_batch` call,
falling back to per-simulator ``run`` for lanes the batched path does
not cover.  Batched results are byte-identical to the scalar loop —
batching is purely an execution strategy, never a semantic choice.

Each simulated cycle models one clock period of the synchronous design:
wires latch their settled values as "previous", registers capture and
commit, input ports advance their stimulus, combinational logic
settles in topological order, and every component's switching activity
for the cycle is recorded.  The recorded
:class:`~repro.hdl.activity.ActivityTrace` is the raw material the
power chain turns into oscilloscope-like traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdl.activity import ActivityTrace
from repro.hdl.engine import (
    CompileError,
    CyclesLike,
    InterpretedEngine,
    _lane_cycles,
    compile_netlist,
    run_batch,
)
from repro.hdl.netlist import Netlist

#: Engine selectors accepted by :class:`Simulator`.
ENGINES = ("auto", "compiled", "vectorised", "interpreted")


class Simulator:
    """Runs a netlist for a number of cycles and records activity.

    ``engine`` selects the execution strategy: ``"auto"`` (compiled
    with per-netlist tier choice and interpreted fallback),
    ``"compiled"`` (scalar generated loop; raise
    :class:`~repro.hdl.engine.CompileError` when lowering fails),
    ``"vectorised"`` (cycle-axis kernels; raise when lowering fails) or
    ``"interpreted"`` (always use the reference loop).
    """

    def __init__(self, netlist: Netlist, engine: str = "auto"):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        netlist.validate()
        self.netlist = netlist
        self._engine_choice = engine
        self._shape: Optional[Tuple[int, int, int]] = None
        self._engine = None
        self._refresh_engine()

    def _refresh_engine(self) -> None:
        """(Re)build the engine; recompiles if the netlist grew.

        The shape tuple includes the netlist's compile generation, so a
        component that announced a mutation via ``invalidate_compiled``
        triggers a recompile here instead of a stale-program error.
        """
        shape = (
            len(self.netlist.wires),
            len(self.netlist.components),
            self.netlist.compile_generation,
        )
        if self._engine is not None and shape == self._shape:
            return
        self._shape = shape
        if self._engine_choice == "interpreted":
            self._engine = InterpretedEngine(self.netlist)
            return
        try:
            self._engine = compile_netlist(self.netlist)
        except CompileError:
            if self._engine_choice in ("compiled", "vectorised"):
                raise
            self._engine = InterpretedEngine(self.netlist)
            return
        if self._engine_choice == "compiled":
            # Pin the scalar generated loop: this choice is the oracle
            # the vectorised tier is byte-compared against.
            self._engine.vectorise = False
        elif self._engine_choice == "vectorised":
            self._engine.vectorise = True

    @property
    def engine_name(self) -> str:
        """Which engine is active: ``"compiled"`` or ``"interpreted"``."""
        return self._engine.name

    @property
    def structural_key(self) -> Optional[str]:
        """Structural fingerprint of the lowered netlist.

        Two netlists with the same key are bit-for-bit guaranteed to
        produce the same :class:`~repro.hdl.activity.ActivityTrace`;
        ``None`` when the netlist cannot be fingerprinted (interpreted
        engine, input ports, opaque lookup callables).
        """
        return self._engine.structural_key

    def run(self, cycles: int, reset: bool = True) -> ActivityTrace:
        """Simulate ``cycles`` clock periods and return the activity.

        With ``reset=True`` (the default) the design starts from its
        power-on state — the paper places all FSMs "in the exact same
        state before starting any power consumption measurements".
        """
        self._refresh_engine()
        return self._engine.run(cycles, reset)

    def state_sequence(self, register_name: str, cycles: int) -> List[int]:
        """Convenience: the Q values of one register over ``cycles`` cycles.

        Runs a fresh simulation (with reset) and samples the register
        after each clock edge; useful for functional tests.  Both
        engines express this through the same cycle machinery as
        :meth:`run`, so the two paths cannot drift.
        """
        register = self.netlist.component(register_name)
        q_wire = register.output_wires[0]
        self._refresh_engine()
        return self._engine.wire_sequence(q_wire, cycles)


def simulate_batch(
    simulators: Sequence[Simulator],
    cycles: CyclesLike,
    reset: bool = True,
) -> List[ActivityTrace]:
    """Run many simulators, batching shape-compatible compiled engines.

    ``cycles`` is one count shared by every simulator or a per-simulator
    sequence.  Simulators whose compiled engines share a
    :attr:`~repro.hdl.engine.CompiledNetlist.shape_key` execute in one
    :func:`~repro.hdl.engine.run_batch` call per group; singleton
    groups, interpreted engines and unbatchable netlists run through the
    ordinary scalar ``run``.  Results come back in input order and are
    byte-identical — traces and post-run netlist state — to calling
    ``simulator.run(cycles, reset)`` in a loop.
    """
    sims = list(simulators)
    lane_cycles = _lane_cycles(sims, cycles)
    results: List[Optional[ActivityTrace]] = [None] * len(sims)
    groups: Dict[str, List[int]] = {}
    seen_netlists = set()
    for position, simulator in enumerate(sims):
        simulator._refresh_engine()
        engine = simulator._engine
        shape_key = getattr(engine, "shape_key", None)
        # A netlist appearing twice (same simulator listed again, or
        # two simulators sharing one netlist) batches only once; its
        # later positions run through the scalar loop below *after*
        # the batch wrote the first run's state back, which preserves
        # the sequential loop's continuation semantics exactly.
        if shape_key is not None and id(simulator.netlist) not in seen_netlists:
            seen_netlists.add(id(simulator.netlist))
            groups.setdefault(shape_key, []).append(position)
    for members in groups.values():
        if len(members) < 2:
            continue
        traces = run_batch(
            [sims[i]._engine for i in members],
            [lane_cycles[i] for i in members],
            reset=reset,
        )
        for position, trace in zip(members, traces):
            results[position] = trace
    for position, simulator in enumerate(sims):
        if results[position] is None:
            results[position] = simulator.run(lane_cycles[position], reset=reset)
    return results
