"""Structural Verilog import: text back into a validated :class:`Netlist`.

This is the inverse of :mod:`repro.hdl.verilog`.  A hand-written lexer
and recursive-descent parser accept the structural Verilog-2001 subset
the exporter emits — module header (ANSI or classic port lists),
``wire``/``reg``/port declarations, ``assign`` expressions over the
combinational vocabulary, one-register ``always`` blocks, ``case``
tables for ROMs and transition tables — plus the gate-primitive
instances (``and``/``nand``/``or``/``nor``/``xor``/``xnor``/``not``/
``buf``) used by third-party ISCAS-style benchmark netlists.  The
result is a validated :class:`~repro.hdl.netlist.Netlist` ready for
watermark insertion, fleet manufacture and every engine tier.

Reconstruction is *structural*: expression shapes are recognised back
into the component vocabulary (``a + N'd1`` → ``Incrementer``,
``a ^ (a >> 1)`` → ``BinaryToGray``, the full prefix-XOR ladder →
``GrayToBinary``, ``s ? b : a`` → ``Mux2``, two-operand ``^`` →
``XorArray``) and anything else becomes a tabulated
:class:`~repro.hdl.combinational.LookupLogic`.  Component names,
ROM markers and clock-tree loads ride in comments
(``// <name>``, ``// <name> (ROM)``,
``// repro: clocktree <name> load=<x>``), so for every design built
from the exporter-emitting vocabulary
``parse_verilog(export_verilog(n))`` reconstructs the same component
list in the same order — the round-trip is bit-identical in state *and*
activity on all three engine tiers (pinned in
``tests/test_verilog_parse.py``).

Known, documented lossy corners (none of which occur in the paper
designs): an exported single-input ``LookupLogic`` comes back as a
``TransitionTable`` (equal widths) or ``SyncROM`` (differing widths),
which simulates identically but uses that component's activity model;
``InputPort`` stimuli are Python callables and come back as the default
constant-zero stimulus.

All diagnostics raise :class:`VerilogParseError` carrying the 1-based
line/column and the offending token.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.register import DRegister
from repro.hdl.wires import Wire, mask

__all__ = [
    "VerilogParseError",
    "parse_verilog",
    "parse_verilog_file",
    "GATE_PRIMITIVES",
]

#: Gate primitives accepted as instances (third-party netlist subset).
GATE_PRIMITIVES = ("and", "nand", "or", "nor", "xor", "xnor", "not", "buf")

#: Comment pragma prefix carrying metadata with no Verilog equivalent.
PRAGMA_PREFIX = "repro:"

_KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "assign",
        "always",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "endcase",
        "default",
        "posedge",
        "negedge",
        *GATE_PRIMITIVES,
    }
)

#: Port names treated as the implicit clock/reset of the substrate.
CLOCK_NAMES = frozenset({"clk", "clock"})
RESET_NAMES = frozenset({"rst", "reset"})


class VerilogParseError(Exception):
    """A syntax or semantic error in structural Verilog source.

    Carries the 1-based ``line``/``col`` and the offending token text
    (when known) so callers can point at the exact spot.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        col: Optional[int] = None,
        token: Optional[str] = None,
    ):
        self.message = message
        self.line = line
        self.col = col
        self.token = token
        location = ""
        if line is not None:
            location = f"line {line}"
            if col is not None:
                location += f", col {col}"
            location += ": "
        at = f" (at {token!r})" if token else ""
        super().__init__(f"{location}{message}{at}")


# ---------------------------------------------------------------------------
# Lexer


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident" | "number" | "symbol" | "pragma" | "eof"
    text: str
    line: int
    col: int
    width: Optional[int] = None  # sized literals only
    value: Optional[int] = None  # numbers only


_TWO_CHAR_SYMBOLS = ("<=", ">>", "<<")
_ONE_CHAR_SYMBOLS = set("()[]{};,:?=^~&|+-*/@#.")

_BASE_DIGITS = {
    "b": "01_",
    "o": "01234567_",
    "d": "0123456789_",
    "h": "0123456789abcdefABCDEF_",
}
_BASE_RADIX = {"b": 2, "o": 8, "d": 10, "h": 16}


class _Lexer:
    """Tokeniser with line/col tracking and a comment side-channel.

    ``comments`` maps a line number to the text of the trailing ``//``
    comment on that line (the exporter's component-name channel);
    ``repro:`` pragma comments are emitted as in-stream tokens instead
    so their position among statements is preserved.
    """

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: List[_Token] = []
        self.comments: Dict[int, str] = {}

    def error(self, message: str, token: Optional[str] = None) -> VerilogParseError:
        return VerilogParseError(message, self.line, self.col, token)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def run(self) -> Tuple[List[_Token], Dict[int, str]]:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t\r\n":
                self._advance()
                continue
            if text.startswith("//", self.pos):
                self._lex_line_comment()
                continue
            if text.startswith("/*", self.pos):
                self._lex_block_comment()
                continue
            if ch.isdigit() or ch == "'":
                self._lex_number()
                continue
            if ch.isalpha() or ch == "_" or ch == "\\":
                self._lex_identifier()
                continue
            two = text[self.pos : self.pos + 2]
            if two in _TWO_CHAR_SYMBOLS:
                self.tokens.append(_Token("symbol", two, self.line, self.col))
                self._advance(2)
                continue
            if ch in _ONE_CHAR_SYMBOLS:
                self.tokens.append(_Token("symbol", ch, self.line, self.col))
                self._advance()
                continue
            raise self.error(f"unexpected character {ch!r}", ch)
        self.tokens.append(_Token("eof", "", self.line, self.col))
        return self.tokens, self.comments

    def _lex_line_comment(self) -> None:
        line, col = self.line, self.col
        end = self.text.find("\n", self.pos)
        if end == -1:
            end = len(self.text)
        body = self.text[self.pos + 2 : end].strip()
        self._advance(end - self.pos)
        if body.startswith(PRAGMA_PREFIX):
            payload = body[len(PRAGMA_PREFIX) :].strip()
            self.tokens.append(_Token("pragma", payload, line, col))
        elif body:
            self.comments[line] = body

    def _lex_block_comment(self) -> None:
        end = self.text.find("*/", self.pos + 2)
        if end == -1:
            raise self.error("unterminated block comment")
        self._advance(end + 2 - self.pos)

    def _lex_identifier(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        if self.text[self.pos] == "\\":
            # Escaped identifier: backslash to next whitespace.
            self._advance()
            while self.pos < len(self.text) and not self.text[self.pos].isspace():
                self._advance()
            name = self.text[start + 1 : self.pos]
            if not name:
                raise self.error("empty escaped identifier")
            self.tokens.append(_Token("ident", name, line, col))
            return
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_$"
        ):
            self._advance()
        self.tokens.append(_Token("ident", self.text[start : self.pos], line, col))

    def _lex_number(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isdigit() or self.text[self.pos] == "_"
        ):
            self._advance()
        width: Optional[int] = None
        if self.pos < len(self.text) and self.text[self.pos] == "'":
            size_digits = self.text[start : self.pos].replace("_", "")
            if size_digits:
                width = int(size_digits)
                if width <= 0:
                    raise VerilogParseError(
                        "literal width must be positive", line, col, size_digits
                    )
            self._advance()  # consume '
            if self.pos >= len(self.text):
                raise self.error("truncated sized literal")
            base = self.text[self.pos].lower()
            if base not in _BASE_DIGITS:
                raise self.error(f"unknown number base {base!r}", base)
            self._advance()
            digit_start = self.pos
            allowed = _BASE_DIGITS[base]
            while self.pos < len(self.text) and self.text[self.pos] in allowed:
                self._advance()
            digits = self.text[digit_start : self.pos].replace("_", "")
            if not digits:
                raise VerilogParseError(
                    "sized literal has no digits",
                    line,
                    col,
                    self.text[start : self.pos],
                )
            value = int(digits, _BASE_RADIX[base])
            text = self.text[start : self.pos]
            if width is not None and value > mask(width):
                raise VerilogParseError(
                    f"literal value {value} does not fit in {width} bits",
                    line,
                    col,
                    text,
                )
            self.tokens.append(_Token("number", text, line, col, width, value))
            return
        digits = self.text[start : self.pos].replace("_", "")
        self.tokens.append(
            _Token("number", digits, line, col, None, int(digits))
        )


# ---------------------------------------------------------------------------
# Expression AST (tuples keep this allocation-light):
#   ("ident", name, line, col)
#   ("num", width_or_None, value, line, col)
#   ("not", operand, line, col)
#   ("bin", op, left, right, line, col)          op in ^ & | >> << + -
#   ("mux", cond, if_true, if_false, line, col)


# ---------------------------------------------------------------------------
# Statement IR produced by the parser, consumed by the netlist builder.


@dataclass
class _PortDecl:
    direction: str  # "input" | "output"
    width: Optional[int]
    name: str
    line: int
    col: int


@dataclass
class _WireDecl:
    width: int
    name: str
    line: int
    col: int


@dataclass
class _Assign:
    target: str
    expr: tuple
    line: int
    col: int
    comment: Optional[str]


@dataclass
class _Register:
    q: str
    d: str
    reset_width: Optional[int]
    reset_value: int
    line: int
    col: int
    comment: Optional[str]


@dataclass
class _CaseTable:
    selector: str
    target: str
    entries: Dict[int, int]
    entry_widths: Dict[int, Optional[int]]
    line: int
    col: int
    comment: Optional[str]
    rom_hint: bool


@dataclass
class _GateInstance:
    gate: str
    instance: Optional[str]
    output: str
    inputs: Tuple[str, ...]
    line: int
    col: int


@dataclass
class _ClockTreePragma:
    name: str
    load: float
    line: int
    col: int


class _Parser:
    """Recursive-descent parser for the structural subset."""

    def __init__(self, tokens: List[_Token], comments: Dict[int, str]):
        self.tokens = tokens
        self.comments = comments
        self.pos = 0
        self.module_name: Optional[str] = None
        self.header_ports: List[str] = []
        self.port_decls: List[_PortDecl] = []
        self.wire_decls: List[_WireDecl] = []
        self.statements: List[_Statement] = []

    # -- token plumbing ----------------------------------------------------

    def peek(self, ahead: int = 0) -> _Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> _Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[_Token] = None) -> VerilogParseError:
        token = token if token is not None else self.peek()
        return VerilogParseError(message, token.line, token.col, token.text or "<eof>")

    def expect_symbol(self, symbol: str) -> _Token:
        token = self.next()
        if token.kind != "symbol" or token.text != symbol:
            raise self.error(f"expected {symbol!r}", token)
        return token

    def expect_keyword(self, word: str) -> _Token:
        token = self.next()
        if token.kind != "ident" or token.text != word:
            raise self.error(f"expected {word!r}", token)
        return token

    def expect_ident(self) -> _Token:
        token = self.next()
        if token.kind != "ident":
            raise self.error("expected an identifier", token)
        if token.text in _KEYWORDS:
            raise self.error(
                f"expected an identifier, got keyword {token.text!r}", token
            )
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.text == word

    def comment_for(self, line: int) -> Optional[str]:
        return self.comments.get(line)

    # -- grammar -----------------------------------------------------------

    def parse_module(self) -> None:
        while self.peek().kind == "pragma":
            self._handle_pragma(self.next())
        self.expect_keyword("module")
        self.module_name = self.expect_ident().text
        if self.peek().kind == "symbol" and self.peek().text == "(":
            self.next()
            self._parse_port_list()
        self.expect_symbol(";")
        while not self.at_keyword("endmodule"):
            token = self.peek()
            if token.kind == "eof":
                raise self.error("unexpected end of file: missing 'endmodule'", token)
            self._parse_module_item()
        self.next()  # endmodule

    def _parse_port_list(self) -> None:
        if self.peek().kind == "symbol" and self.peek().text == ")":
            self.next()
            return
        while True:
            token = self.peek()
            if token.kind == "ident" and token.text in ("input", "output", "inout"):
                self._parse_ansi_port()
            else:
                self.header_ports.append(self.expect_ident().text)
            token = self.next()
            if token.kind == "symbol" and token.text == ",":
                continue
            if token.kind == "symbol" and token.text == ")":
                return
            raise self.error("expected ',' or ')' in port list", token)

    def _parse_ansi_port(self) -> None:
        direction_token = self.next()
        direction = direction_token.text
        if direction == "inout":
            raise self.error("'inout' ports are not supported", direction_token)
        if self.at_keyword("wire") or self.at_keyword("reg"):
            self.next()
        width = self._parse_optional_range()
        name = self.expect_ident()
        self.port_decls.append(
            _PortDecl(direction, width, name.text, name.line, name.col)
        )
        self.header_ports.append(name.text)

    def _parse_optional_range(self) -> Optional[int]:
        if not (self.peek().kind == "symbol" and self.peek().text == "["):
            return None
        self.next()
        msb = self.next()
        if msb.kind != "number" or msb.value is None:
            raise self.error("expected a constant msb in range", msb)
        self.expect_symbol(":")
        lsb = self.next()
        if lsb.kind != "number" or lsb.value is None:
            raise self.error("expected a constant lsb in range", lsb)
        if lsb.value != 0:
            raise self.error(
                f"only [msb:0] ranges are supported, got [{msb.value}:{lsb.value}]",
                lsb,
            )
        self.expect_symbol("]")
        return msb.value + 1

    def _parse_module_item(self) -> None:
        token = self.peek()
        if token.kind == "pragma":
            self._handle_pragma(self.next())
            return
        if token.kind != "ident":
            raise self.error("expected a module item", token)
        word = token.text
        if word in ("input", "output"):
            self._parse_direction_decl()
        elif word == "inout":
            raise self.error("'inout' ports are not supported", token)
        elif word in ("wire", "reg"):
            self._parse_net_decl()
        elif word == "assign":
            self._parse_assign()
        elif word == "always":
            self._parse_always()
        elif word in GATE_PRIMITIVES:
            self._parse_gate_instance()
        else:
            raise self.error(
                f"unsupported construct {word!r} (structural subset only)", token
            )

    def _handle_pragma(self, token: _Token) -> None:
        fields = token.text.split()
        if not fields:
            return
        if fields[0] == "clocktree":
            if len(fields) < 3 or not fields[-1].startswith("load="):
                raise VerilogParseError(
                    "malformed clocktree pragma "
                    "(expected 'repro: clocktree <name> load=<x>')",
                    token.line,
                    token.col,
                    token.text,
                )
            name = " ".join(fields[1:-1])
            try:
                load = float(fields[-1][len("load=") :])
            except ValueError:
                raise VerilogParseError(
                    "malformed clocktree load value",
                    token.line,
                    token.col,
                    fields[-1],
                ) from None
            self.statements.append(
                _ClockTreePragma(name, load, token.line, token.col)
            )
        # Unknown pragmas are ignored for forward compatibility.

    def _parse_direction_decl(self) -> None:
        direction = self.next().text
        if self.at_keyword("wire") or self.at_keyword("reg"):
            self.next()
        width = self._parse_optional_range()
        while True:
            name = self.expect_ident()
            self.port_decls.append(
                _PortDecl(direction, width, name.text, name.line, name.col)
            )
            token = self.next()
            if token.kind == "symbol" and token.text == ",":
                continue
            if token.kind == "symbol" and token.text == ";":
                return
            raise self.error("expected ',' or ';' in port declaration", token)

    def _parse_net_decl(self) -> None:
        self.next()  # wire | reg
        width = self._parse_optional_range()
        while True:
            name = self.expect_ident()
            self.wire_decls.append(
                _WireDecl(
                    width if width is not None else 1,
                    name.text,
                    name.line,
                    name.col,
                )
            )
            token = self.next()
            if token.kind == "symbol" and token.text == ",":
                continue
            if token.kind == "symbol" and token.text == ";":
                return
            raise self.error("expected ',' or ';' in net declaration", token)

    def _parse_assign(self) -> None:
        keyword = self.next()  # assign
        target = self.expect_ident()
        self.expect_symbol("=")
        expr = self._parse_expression()
        self.expect_symbol(";")
        self.statements.append(
            _Assign(
                target.text,
                expr,
                keyword.line,
                keyword.col,
                self.comment_for(keyword.line),
            )
        )

    # -- expressions -------------------------------------------------------

    def _parse_expression(self) -> tuple:
        return self._parse_ternary()

    def _parse_ternary(self) -> tuple:
        cond = self._parse_or()
        if self.peek().kind == "symbol" and self.peek().text == "?":
            token = self.next()
            if_true = self._parse_ternary()
            self.expect_symbol(":")
            if_false = self._parse_ternary()
            return ("mux", cond, if_true, if_false, token.line, token.col)
        return cond

    def _parse_binary(self, operators: Sequence[str], inner) -> tuple:
        left = inner()
        while self.peek().kind == "symbol" and self.peek().text in operators:
            token = self.next()
            right = inner()
            left = ("bin", token.text, left, right, token.line, token.col)
        return left

    def _parse_or(self) -> tuple:
        return self._parse_binary(("|",), self._parse_xor)

    def _parse_xor(self) -> tuple:
        return self._parse_binary(("^",), self._parse_and)

    def _parse_and(self) -> tuple:
        return self._parse_binary(("&",), self._parse_shift)

    def _parse_shift(self) -> tuple:
        return self._parse_binary((">>", "<<"), self._parse_add)

    def _parse_add(self) -> tuple:
        return self._parse_binary(("+", "-"), self._parse_unary)

    def _parse_unary(self) -> tuple:
        token = self.peek()
        if token.kind == "symbol" and token.text == "~":
            self.next()
            operand = self._parse_unary()
            return ("not", operand, token.line, token.col)
        return self._parse_primary()

    def _parse_primary(self) -> tuple:
        token = self.next()
        if token.kind == "symbol" and token.text == "(":
            expr = self._parse_expression()
            self.expect_symbol(")")
            return expr
        if token.kind == "number":
            return ("num", token.width, token.value, token.line, token.col)
        if token.kind == "ident" and token.text not in _KEYWORDS:
            return ("ident", token.text, token.line, token.col)
        raise self.error("expected an operand", token)

    # -- always blocks -----------------------------------------------------

    def _parse_always(self) -> None:
        keyword = self.next()  # always
        comment = self.comment_for(keyword.line)
        self.expect_symbol("@")
        self.expect_symbol("(")
        token = self.peek()
        if token.kind == "symbol" and token.text == "*":
            self.next()
            self.expect_symbol(")")
            self._parse_case_block(keyword, comment)
            return
        if token.kind == "ident" and token.text == "posedge":
            self.next()
            clock = self.expect_ident()
            if clock.text not in CLOCK_NAMES:
                raise self.error(
                    f"only a {sorted(CLOCK_NAMES)} clock is supported", clock
                )
            self.expect_symbol(")")
            self._parse_register_block(keyword, comment)
            return
        raise self.error(
            "unsupported always sensitivity (expected '@(*)' or '@(posedge clk)')",
            token,
        )

    def _parse_register_block(self, keyword: _Token, comment: Optional[str]) -> None:
        has_begin = self.at_keyword("begin")
        if has_begin:
            self.next()
        self.expect_keyword("if")
        self.expect_symbol("(")
        reset = self.expect_ident()
        if reset.text not in RESET_NAMES:
            raise self.error(f"only a {sorted(RESET_NAMES)} reset is supported", reset)
        self.expect_symbol(")")
        q_token = self.expect_ident()
        self.expect_symbol("<=")
        value = self.next()
        if value.kind != "number" or value.value is None:
            raise self.error("register reset value must be a literal", value)
        self.expect_symbol(";")
        self.expect_keyword("else")
        q2 = self.expect_ident()
        if q2.text != q_token.text:
            raise self.error(
                f"register branches assign different targets "
                f"({q_token.text!r} vs {q2.text!r})",
                q2,
            )
        self.expect_symbol("<=")
        d_token = self.expect_ident()
        self.expect_symbol(";")
        if has_begin:
            self.expect_keyword("end")
        self.statements.append(
            _Register(
                q_token.text,
                d_token.text,
                value.width,
                value.value,
                keyword.line,
                keyword.col,
                comment,
            )
        )

    def _parse_case_block(self, keyword: _Token, comment: Optional[str]) -> None:
        has_begin = self.at_keyword("begin")
        if has_begin:
            self.next()
        self.expect_keyword("case")
        self.expect_symbol("(")
        selector = self.expect_ident()
        self.expect_symbol(")")
        entries: Dict[int, int] = {}
        entry_widths: Dict[int, Optional[int]] = {}
        target: Optional[str] = None
        rom_hint = bool(comment) and comment.endswith("(ROM)")
        while not self.at_keyword("endcase"):
            token = self.peek()
            if token.kind == "eof":
                raise self.error("unexpected end of file inside case table", token)
            if self.at_keyword("default"):
                self.next()
                self.expect_symbol(":")
                self.expect_ident()  # target (the all-zero default arm)
                self.expect_symbol("=")
                value = self.next()
                if value.kind != "number":
                    raise self.error("case default must assign a literal", value)
                self.expect_symbol(";")
                continue
            key = self.next()
            if key.kind != "number" or key.value is None:
                raise self.error("case label must be a literal", key)
            self.expect_symbol(":")
            target_token = self.expect_ident()
            if target is None:
                target = target_token.text
            elif target != target_token.text:
                raise self.error(
                    f"case arms assign different targets "
                    f"({target!r} vs {target_token.text!r})",
                    target_token,
                )
            self.expect_symbol("=")
            value = self.next()
            if value.kind != "number" or value.value is None:
                raise self.error("case arm must assign a literal", value)
            self.expect_symbol(";")
            if key.value in entries:
                raise self.error(
                    f"duplicate case label {key.text}", key
                )
            entries[key.value] = value.value
            entry_widths[key.value] = value.width
        self.next()  # endcase
        if has_begin:
            self.expect_keyword("end")
        if target is None:
            raise self.error("case table has no entries", keyword)
        name_comment = comment
        if rom_hint and comment is not None:
            name_comment = comment[: -len("(ROM)")].strip()
        self.statements.append(
            _CaseTable(
                selector.text,
                target,
                entries,
                entry_widths,
                keyword.line,
                keyword.col,
                name_comment,
                rom_hint,
            )
        )

    # -- gate instances ----------------------------------------------------

    def _parse_gate_instance(self) -> None:
        gate = self.next()
        instance: Optional[str] = None
        if self.peek().kind == "ident" and self.peek().text not in _KEYWORDS:
            instance = self.next().text
        self.expect_symbol("(")
        terminals: List[str] = []
        while True:
            terminals.append(self.expect_ident().text)
            token = self.next()
            if token.kind == "symbol" and token.text == ",":
                continue
            if token.kind == "symbol" and token.text == ")":
                break
            raise self.error("expected ',' or ')' in gate terminals", token)
        self.expect_symbol(";")
        if gate.text in ("not", "buf"):
            if len(terminals) != 2:
                raise self.error(
                    f"{gate.text!r} takes exactly one output and one input", gate
                )
        elif len(terminals) < 3:
            raise self.error(
                f"{gate.text!r} needs at least two inputs", gate
            )
        self.statements.append(
            _GateInstance(
                gate.text,
                instance,
                terminals[0],
                tuple(terminals[1:]),
                gate.line,
                gate.col,
            )
        )


# ---------------------------------------------------------------------------
# Netlist construction


def _expr_idents(expr: tuple, out: List[tuple]) -> None:
    kind = expr[0]
    if kind == "ident":
        out.append(expr)
    elif kind == "not":
        _expr_idents(expr[1], out)
    elif kind == "bin":
        _expr_idents(expr[2], out)
        _expr_idents(expr[3], out)
    elif kind == "mux":
        _expr_idents(expr[1], out)
        _expr_idents(expr[2], out)
        _expr_idents(expr[3], out)


def _flatten_xor(expr: tuple, out: List[tuple]) -> None:
    if expr[0] == "bin" and expr[1] == "^":
        _flatten_xor(expr[2], out)
        _flatten_xor(expr[3], out)
    else:
        out.append(expr)


_GATE_FUNCTIONS = {
    "and": lambda acc, value: acc & value,
    "nand": lambda acc, value: acc & value,
    "or": lambda acc, value: acc | value,
    "nor": lambda acc, value: acc | value,
    "xor": lambda acc, value: acc ^ value,
    "xnor": lambda acc, value: acc ^ value,
}
_GATE_INVERTING = frozenset({"nand", "nor", "xnor", "not"})


def _make_gate_function(gate: str, out_width: int):
    out_mask = mask(out_width)
    if gate == "not":
        return lambda a: (~a) & out_mask
    if gate == "buf":
        return lambda a: a & out_mask
    fold = _GATE_FUNCTIONS[gate]
    invert = gate in _GATE_INVERTING

    def gate_function(*values: int) -> int:
        acc = values[0]
        for value in values[1:]:
            acc = fold(acc, value)
        if invert:
            acc = ~acc
        return acc & out_mask

    return gate_function


class _NetlistBuilder:
    """Turn the parsed statement IR into a validated :class:`Netlist`."""

    def __init__(self, parser: _Parser, name: Optional[str]):
        self.parser = parser
        self.netlist = Netlist(name or parser.module_name or "imported")
        self.wires: Dict[str, Wire] = {}
        self.wire_lines: Dict[str, Tuple[int, int]] = {}
        self.input_ports: Dict[str, _PortDecl] = {}
        self.output_ports: Dict[str, _PortDecl] = {}
        self.used_component_names: set = set()
        self.realised_outputs: set = set()
        self.anonymous_index = 0

    # -- naming ------------------------------------------------------------

    def component_name(self, preferred: Optional[str], fallback: str) -> str:
        name = preferred if preferred else fallback
        if not name:
            self.anonymous_index += 1
            name = f"u{self.anonymous_index}"
        candidate = name
        suffix = 1
        while candidate in self.used_component_names:
            suffix += 1
            candidate = f"{name}_{suffix}"
        self.used_component_names.add(candidate)
        return candidate

    # -- wires -------------------------------------------------------------

    def declare_wire(self, decl: _WireDecl) -> None:
        if decl.name in self.wires:
            raise VerilogParseError(
                f"duplicate declaration of {decl.name!r}",
                decl.line,
                decl.col,
                decl.name,
            )
        self.wires[decl.name] = self.netlist.wire(decl.name, decl.width)
        self.wire_lines[decl.name] = (decl.line, decl.col)

    def materialise_port_wire(self, name: str) -> Wire:
        """Create the netlist wire backing a port referenced directly."""
        decl = self.input_ports.get(name) or self.output_ports.get(name)
        assert decl is not None
        wire = self.netlist.wire(name, decl.width if decl.width is not None else 1)
        self.wires[name] = wire
        self.wire_lines[name] = (decl.line, decl.col)
        return wire

    def resolve(self, name: str, line: int, col: int) -> Wire:
        wire = self.wires.get(name)
        if wire is not None:
            return wire
        if name in self.input_ports or name in self.output_ports:
            return self.materialise_port_wire(name)
        raise VerilogParseError(
            f"reference to undeclared wire {name!r}", line, col, name
        )

    # -- top-level driver --------------------------------------------------

    def build(self) -> Netlist:
        parser = self.parser
        for decl in parser.port_decls:
            if decl.name in CLOCK_NAMES or decl.name in RESET_NAMES:
                continue
            registry = (
                self.input_ports if decl.direction == "input" else self.output_ports
            )
            if decl.name in registry:
                raise VerilogParseError(
                    f"duplicate port declaration {decl.name!r}",
                    decl.line,
                    decl.col,
                    decl.name,
                )
            registry[decl.name] = decl
        declared = (
            set(self.input_ports)
            | set(self.output_ports)
            | CLOCK_NAMES
            | RESET_NAMES
        )
        for port in parser.header_ports:
            if port not in declared and port not in {
                d.name for d in parser.wire_decls
            }:
                raise VerilogParseError(
                    f"port {port!r} is never given a direction", None, None, port
                )
        for decl in parser.wire_decls:
            if decl.name in self.input_ports or decl.name in self.output_ports:
                # `output foo;` + `reg foo;` style redeclaration: widen info.
                continue
            if decl.name in CLOCK_NAMES or decl.name in RESET_NAMES:
                continue
            self.declare_wire(decl)

        for statement in parser.statements:
            if isinstance(statement, _ClockTreePragma):
                self._build_clocktree(statement)
            elif isinstance(statement, _Assign):
                self._build_assign(statement)
            elif isinstance(statement, _Register):
                self._build_register(statement)
            elif isinstance(statement, _CaseTable):
                self._build_case(statement)
            elif isinstance(statement, _GateInstance):
                self._build_gate(statement)

        self._finish_output_ports()
        try:
            self.netlist.validate()
        except NetlistError as error:
            raise VerilogParseError(f"invalid netlist: {error}") from error
        return self.netlist

    # -- statement builders ------------------------------------------------

    def _build_clocktree(self, statement: _ClockTreePragma) -> None:
        name = self.component_name(statement.name, "clock_tree")
        try:
            self.netlist.add(ClockTree(name, statement.load))
        except ValueError as error:
            raise VerilogParseError(
                str(error), statement.line, statement.col
            ) from error

    def _build_assign(self, statement: _Assign) -> None:
        expr = statement.expr
        target_name = statement.target

        # Exporter output-port pattern: `assign <port>_out = <wire>;`
        # with the port symbol never used anywhere else.
        if (
            target_name in self.output_ports
            and target_name not in self.wires
            and expr[0] == "ident"
        ):
            source = self.resolve(expr[1], expr[2], expr[3])
            if target_name.endswith("_out"):
                port_name = target_name[: -len("_out")]
            else:
                port_name = target_name
            name = self.component_name(port_name, target_name)
            self._check_port_width(self.output_ports[target_name], source, statement)
            self.netlist.add(OutputPort(name, source))
            self.realised_outputs.add(target_name)
            return

        if target_name in self.input_ports and target_name not in self.wires:
            raise VerilogParseError(
                f"assignment drives input port {target_name!r}",
                statement.line,
                statement.col,
                target_name,
            )

        target = self.resolve(target_name, statement.line, statement.col)
        if target_name in self.output_ports:
            self.realised_outputs.discard(target_name)  # realised later

        # Exporter input-port pattern: `assign <wire> = <port>_in;`.
        if (
            expr[0] == "ident"
            and expr[1] in self.input_ports
            and expr[1] not in self.wires
        ):
            port_symbol = expr[1]
            port_name = (
                port_symbol[: -len("_in")]
                if port_symbol.endswith("_in")
                else port_symbol
            )
            name = self.component_name(port_name, port_symbol)
            self._check_port_width(self.input_ports[port_symbol], target, statement)
            self.netlist.add(InputPort(name, target))
            return

        self._build_logic(statement, target, expr)

    def _check_port_width(
        self, decl: _PortDecl, wire: Wire, statement: _Assign
    ) -> None:
        width = decl.width if decl.width is not None else 1
        if width != wire.width:
            raise VerilogParseError(
                f"port {decl.name!r} is {width} bits but connects to "
                f"{wire.width}-bit wire {wire.name!r}",
                statement.line,
                statement.col,
                decl.name,
            )

    def _build_logic(self, statement: _Assign, target: Wire, expr: tuple) -> None:
        """Recognise the component vocabulary, falling back to LookupLogic."""
        builder = self._recognise(statement, target, expr)
        if builder is None:
            self._build_lookup(statement, target, expr)

    def _recognise(self, statement: _Assign, target: Wire, expr: tuple):
        kind = expr[0]
        line, col = statement.line, statement.col
        if kind == "num":
            width, value = expr[1], expr[2]
            if width is not None and width != target.width:
                raise VerilogParseError(
                    f"{width}-bit literal assigned to {target.width}-bit "
                    f"wire {target.name!r}",
                    line,
                    col,
                    f"{width}'d{value}",
                )
            name = self.component_name(statement.comment, f"{target.name}_const")
            self._add_component(Constant, (name, target, value), line, col)
            return True
        if kind == "ident":
            source = self.resolve(expr[1], expr[2], expr[3])
            name = self.component_name(statement.comment, f"{target.name}_buf")
            self._add_component(
                LookupLogic,
                (name, (source,), target, _make_gate_function("buf", target.width)),
                line,
                col,
                glitch_factor=0.0,
            )
            return True
        if kind == "bin" and expr[1] == "+":
            # `a + N'd1` -> Incrementer.
            left, right = expr[2], expr[3]
            if (
                left[0] == "ident"
                and right[0] == "num"
                and right[2] == 1
                and (right[1] is None or right[1] == target.width)
            ):
                a = self.resolve(left[1], left[2], left[3])
                name = self.component_name(statement.comment, f"{target.name}_inc")
                self._add_component(Incrementer, (name, a, target), line, col)
                return True
            return None
        if kind == "bin" and expr[1] == "^":
            terms: List[tuple] = []
            _flatten_xor(expr, terms)
            # Two plain identifiers -> XorArray.
            if len(terms) == 2 and all(t[0] == "ident" for t in terms):
                if terms[0][1] != terms[1][1]:
                    a = self.resolve(terms[0][1], terms[0][2], terms[0][3])
                    b = self.resolve(terms[1][1], terms[1][2], terms[1][3])
                    name = self.component_name(statement.comment, f"{target.name}_xor")
                    self._add_component(XorArray, (name, a, b, target), line, col)
                    return True
            # `a ^ (a >> 1)` -> BinaryToGray.
            if (
                len(terms) == 2
                and terms[0][0] == "ident"
                and terms[1][0] == "bin"
                and terms[1][1] == ">>"
                and terms[1][2][0] == "ident"
                and terms[1][2][1] == terms[0][1]
                and terms[1][3][0] == "num"
                and terms[1][3][2] == 1
            ):
                a = self.resolve(terms[0][1], terms[0][2], terms[0][3])
                name = self.component_name(statement.comment, f"{target.name}_b2g")
                self._add_component(BinaryToGray, (name, a, target), line, col)
                return True
            # The full prefix-XOR ladder -> GrayToBinary.
            shifts = set()
            source_name = None
            ladder = True
            for term in terms:
                if (
                    term[0] == "bin"
                    and term[1] == ">>"
                    and term[2][0] == "ident"
                    and term[3][0] == "num"
                ):
                    if source_name is None:
                        source_name = term[2][1]
                    if term[2][1] != source_name:
                        ladder = False
                        break
                    shifts.add(term[3][2])
                else:
                    ladder = False
                    break
            if ladder and source_name is not None:
                a = self.resolve(source_name, line, col)
                if shifts == set(range(a.width)):
                    name = self.component_name(statement.comment, f"{target.name}_g2b")
                    self._add_component(GrayToBinary, (name, a, target), line, col)
                    return True
            return None
        if kind == "mux":
            cond, if_true, if_false = expr[1], expr[2], expr[3]
            if (
                cond[0] == "ident"
                and if_true[0] == "ident"
                and if_false[0] == "ident"
            ):
                select = self.resolve(cond[1], cond[2], cond[3])
                b = self.resolve(if_true[1], if_true[2], if_true[3])
                a = self.resolve(if_false[1], if_false[2], if_false[3])
                name = self.component_name(statement.comment, f"{target.name}_mux")
                self._add_component(Mux2, (name, select, a, b, target), line, col)
                return True
            return None
        return None

    def _add_component(self, cls, args, line: int, col: int, **kwargs) -> None:
        try:
            self.netlist.add(cls(*args, **kwargs))
        except (ValueError, NetlistError) as error:
            raise VerilogParseError(str(error), line, col) from error

    def _build_lookup(self, statement: _Assign, target: Wire, expr: tuple) -> None:
        """Compile a general expression into a LookupLogic callable."""
        ident_nodes: List[tuple] = []
        _expr_idents(expr, ident_nodes)
        seen: Dict[str, Wire] = {}
        for node in ident_nodes:
            if node[1] not in seen:
                seen[node[1]] = self.resolve(node[1], node[2], node[3])
        if not seen:
            raise VerilogParseError(
                f"expression driving {target.name!r} references no wires",
                statement.line,
                statement.col,
            )
        inputs = tuple(seen.values())
        arg_names = {name: f"_v{index}" for index, name in enumerate(seen)}

        def width_of(node: tuple) -> int:
            kind = node[0]
            if kind == "ident":
                return seen[node[1]].width
            if kind == "num":
                if node[1] is not None:
                    return node[1]
                return max(1, int(node[2]).bit_length())
            if kind == "not":
                return width_of(node[1])
            if kind == "bin":
                if node[1] in (">>", "<<"):
                    return width_of(node[2])
                return max(width_of(node[2]), width_of(node[3]))
            if kind == "mux":
                return max(width_of(node[2]), width_of(node[3]))
            raise AssertionError(f"unknown expression node {kind!r}")

        def render(node: tuple) -> str:
            kind = node[0]
            if kind == "ident":
                return arg_names[node[1]]
            if kind == "num":
                return str(node[2])
            if kind == "not":
                return f"((~{render(node[1])}) & {mask(width_of(node[1]))})"
            if kind == "bin":
                op = node[1]
                left, right = render(node[2]), render(node[3])
                if op in ("+", "-", "<<"):
                    return f"(({left} {op} {right}) & {mask(width_of(node))})"
                return f"({left} {op} {right})"
            if kind == "mux":
                return (
                    f"({render(node[2])} if {render(node[1])} else {render(node[3])})"
                )
            raise AssertionError(f"unknown expression node {kind!r}")

        source = (
            f"lambda {', '.join(arg_names.values())}: "
            f"({render(expr)}) & {mask(target.width)}"
        )
        function = eval(source, {"__builtins__": {}})  # noqa: S307 - generated above
        name = self.component_name(statement.comment, f"{target.name}_logic")
        self._add_component(
            LookupLogic,
            (name, inputs, target, function),
            statement.line,
            statement.col,
        )

    def _build_register(self, statement: _Register) -> None:
        q = self.resolve(statement.q, statement.line, statement.col)
        d = self.resolve(statement.d, statement.line, statement.col)
        if statement.reset_width is not None and statement.reset_width != q.width:
            raise VerilogParseError(
                f"{statement.reset_width}-bit reset literal for {q.width}-bit "
                f"register {statement.q!r}",
                statement.line,
                statement.col,
                statement.q,
            )
        name = self.component_name(statement.comment, f"{statement.q}_reg")
        self._add_component(
            DRegister,
            (name, d, q),
            statement.line,
            statement.col,
            reset_value=statement.reset_value,
        )

    def _build_case(self, statement: _CaseTable) -> None:
        selector = self.resolve(statement.selector, statement.line, statement.col)
        target = self.resolve(statement.target, statement.line, statement.col)
        for key, value in statement.entries.items():
            if key > mask(selector.width):
                raise VerilogParseError(
                    f"case label {key} does not fit selector "
                    f"{statement.selector!r} ({selector.width} bits)",
                    statement.line,
                    statement.col,
                    statement.selector,
                )
            width = statement.entry_widths[key]
            if width is not None and width != target.width:
                raise VerilogParseError(
                    f"{width}-bit case value for {target.width}-bit "
                    f"wire {statement.target!r}",
                    statement.line,
                    statement.col,
                    statement.target,
                )
            if value > mask(target.width):
                raise VerilogParseError(
                    f"case value {value} does not fit {target.width}-bit "
                    f"wire {statement.target!r}",
                    statement.line,
                    statement.col,
                    statement.target,
                )
        full = len(statement.entries) == (1 << selector.width)
        if statement.rom_hint or (full and selector.width != target.width):
            if not full:
                raise VerilogParseError(
                    f"ROM case covers {len(statement.entries)} of "
                    f"{1 << selector.width} addresses",
                    statement.line,
                    statement.col,
                    statement.selector,
                )
            contents = [
                statement.entries[index] for index in range(1 << selector.width)
            ]
            name = self.component_name(statement.comment, f"{statement.target}_rom")
            self._add_component(
                SyncROM,
                (name, selector, target, contents),
                statement.line,
                statement.col,
            )
            return
        if selector.width != target.width:
            raise VerilogParseError(
                "case table is neither a full ROM nor an equal-width "
                f"transition table ({selector.width} -> {target.width} bits, "
                f"{len(statement.entries)} entries)",
                statement.line,
                statement.col,
                statement.selector,
            )
        name = self.component_name(statement.comment, f"{statement.target}_tt")
        self._add_component(
            TransitionTable,
            (name, selector, target, statement.entries),
            statement.line,
            statement.col,
        )

    def _build_gate(self, statement: _GateInstance) -> None:
        output = self.resolve(statement.output, statement.line, statement.col)
        if statement.output in self.output_ports:
            self.realised_outputs.discard(statement.output)
        inputs = tuple(
            self.resolve(name, statement.line, statement.col)
            for name in statement.inputs
        )
        function = _make_gate_function(statement.gate, output.width)
        name = self.component_name(
            statement.instance, f"{statement.gate}_{statement.output}"
        )
        self._add_component(
            LookupLogic,
            (name, inputs, output, function),
            statement.line,
            statement.col,
        )

    def _finish_output_ports(self) -> None:
        """Materialise pads for output ports referenced as plain wires."""
        for port_name, decl in self.output_ports.items():
            if port_name in self.realised_outputs:
                continue
            wire = self.wires.get(port_name)
            if wire is None:
                # Declared but never driven: leave it out entirely.
                continue
            name = self.component_name(None, f"{port_name}_pad")
            self._add_component(OutputPort, (name, wire), decl.line, decl.col)


def parse_verilog(text: str, name: Optional[str] = None) -> Netlist:
    """Parse structural Verilog source into a validated :class:`Netlist`.

    ``name`` overrides the netlist name (defaults to the module name).
    Raises :class:`VerilogParseError` with line/col diagnostics on any
    construct outside the supported structural subset.
    """
    tokens, comments = _Lexer(text).run()
    parser = _Parser(tokens, comments)
    parser.parse_module()
    builder = _NetlistBuilder(parser, name)
    netlist = builder.build()
    _drive_loose_inputs(builder)
    try:
        netlist.validate()
    except NetlistError as error:
        raise VerilogParseError(f"invalid netlist: {error}") from error
    return netlist


def _drive_loose_inputs(builder: _NetlistBuilder) -> None:
    """Add InputPort drivers for ports read directly inside logic.

    The exporter's ``assign <wire> = <port>_in;`` aliases are handled in
    statement order; third-party netlists instead read input ports
    straight from gate terminals, which materialises the port wire
    without a driver.  Every such wire gets an :class:`InputPort` here
    (appended after the logic, keeping build order deterministic).
    """
    driven = set()
    for component in builder.netlist.components:
        for wire in component.output_wires:
            driven.add(id(wire))
    for port_name in builder.input_ports:
        wire = builder.wires.get(port_name)
        if wire is None or id(wire) in driven:
            continue
        name = builder.component_name(None, port_name)
        builder.netlist.add(InputPort(name, wire))


def parse_verilog_file(path, name: Optional[str] = None) -> Netlist:
    """Read and parse a structural Verilog file (see :func:`parse_verilog`)."""
    source = Path(path).read_text(encoding="utf-8")
    try:
        return parse_verilog(source, name=name)
    except VerilogParseError as error:
        raise VerilogParseError(
            f"{Path(path)}: {error.message}", error.line, error.col, error.token
        ) from error
