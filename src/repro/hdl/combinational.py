"""Combinational building blocks: constants, XOR arrays, incrementers,
Gray-code converters, multiplexers and table-driven logic.

Each block records its own switching activity.  Where a block has a
well-known internal structure (the ripple-carry chain of an
incrementer, the XOR ladder of a Gray converter) the activity model
accounts for the internal nodes, not just the output bus — the carry
chain of a binary counter is precisely the strong, shared, time-varying
power component that makes different devices with the same counter
correlate in the paper's experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.hdl.component import (
    ActivityEvent,
    CombinationalComponent,
    KIND_COMB,
)
from repro.hdl.wires import Wire, hamming_distance, mask


class Constant(CombinationalComponent):
    """Drives a wire with a fixed value (e.g. the watermark key Kw)."""

    def __init__(self, name: str, output: Wire, value: int):
        super().__init__(name)
        if not 0 <= value <= mask(output.width):
            raise ValueError(
                f"{name}: constant {value} does not fit in {output.width} bits"
            )
        self.output = output
        self.value = value

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)

    def evaluate(self) -> None:
        self.output.drive(self.value)

    def activity(self) -> List[ActivityEvent]:
        return []

    def activity_kinds(self):
        return ()


class XorArray(CombinationalComponent):
    """Bitwise XOR of two equal-width buses (state ⊕ Kw in the paper)."""

    def __init__(self, name: str, a: Wire, b: Wire, output: Wire):
        super().__init__(name)
        if not a.width == b.width == output.width:
            raise ValueError(
                f"{name}: XOR operand widths differ "
                f"({a.width}, {b.width}, {output.width})"
            )
        self.a = a
        self.b = b
        self.output = output

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.a, self.b)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)

    def evaluate(self) -> None:
        self.output.drive(self.a.value ^ self.b.value)

    def activity(self) -> List[ActivityEvent]:
        return [ActivityEvent(self.name, KIND_COMB, float(self.output.toggles()))]

    def activity_kinds(self):
        return (KIND_COMB,)


class Incrementer(CombinationalComponent):
    """``output = (a + 1) mod 2^width`` with a ripple-carry activity model.

    On an increment, the bits that toggle are the trailing ones plus the
    first zero — the length of the carry ripple.  Internal carry nodes
    toggle alongside the sum bits, so the activity is modelled as twice
    the ripple length (sum node + carry node per position).
    """

    def __init__(self, name: str, a: Wire, output: Wire):
        super().__init__(name)
        if a.width != output.width:
            raise ValueError(f"{name}: width mismatch ({a.width} vs {output.width})")
        self.a = a
        self.output = output

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.a,)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)

    def evaluate(self) -> None:
        self.output.drive((self.a.value + 1) & mask(self.a.width))

    def carry_ripple_length(self) -> int:
        """Number of bit positions the carry propagates through."""
        ripple = 1
        value = self.a.value
        while value & 1 and ripple < self.a.width:
            ripple += 1
            value >>= 1
        return ripple

    def activity(self) -> List[ActivityEvent]:
        ripple = self.carry_ripple_length()
        output_toggles = self.output.toggles()
        return [
            ActivityEvent(self.name, KIND_COMB, float(output_toggles + 2 * ripple)),
        ]

    def activity_kinds(self):
        return (KIND_COMB,)


class BinaryToGray(CombinationalComponent):
    """Gray encoding: ``output = a ^ (a >> 1)``."""

    def __init__(self, name: str, a: Wire, output: Wire):
        super().__init__(name)
        if a.width != output.width:
            raise ValueError(f"{name}: width mismatch ({a.width} vs {output.width})")
        self.a = a
        self.output = output

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.a,)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)

    def evaluate(self) -> None:
        self.output.drive(self.a.value ^ (self.a.value >> 1))

    def activity(self) -> List[ActivityEvent]:
        input_toggles = hamming_distance(self.a.value, self.a.previous)
        output_toggles = self.output.toggles()
        return [
            ActivityEvent(self.name, KIND_COMB, float(input_toggles + output_toggles))
        ]

    def activity_kinds(self):
        return (KIND_COMB,)


class GrayToBinary(CombinationalComponent):
    """Inverse Gray encoding via the prefix-XOR ladder."""

    def __init__(self, name: str, a: Wire, output: Wire):
        super().__init__(name)
        if a.width != output.width:
            raise ValueError(f"{name}: width mismatch ({a.width} vs {output.width})")
        self.a = a
        self.output = output

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.a,)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)

    def evaluate(self) -> None:
        value = self.a.value
        shift = self.a.width // 2
        while shift:
            value ^= value >> shift
            shift //= 2
        # The loop above works for power-of-two widths; finish bit-serially
        # to stay correct for arbitrary widths.
        binary = 0
        acc = 0
        for index in range(self.a.width - 1, -1, -1):
            acc ^= (self.a.value >> index) & 1
            binary |= acc << index
        self.output.drive(binary)

    def activity(self) -> List[ActivityEvent]:
        # The XOR ladder has roughly one internal node per bit.
        input_toggles = hamming_distance(self.a.value, self.a.previous)
        output_toggles = self.output.toggles()
        return [
            ActivityEvent(self.name, KIND_COMB, float(input_toggles + output_toggles))
        ]

    def activity_kinds(self):
        return (KIND_COMB,)


class Mux2(CombinationalComponent):
    """Two-way multiplexer: ``output = a if select == 0 else b``."""

    def __init__(self, name: str, select: Wire, a: Wire, b: Wire, output: Wire):
        super().__init__(name)
        if select.width != 1:
            raise ValueError(f"{name}: select must be 1 bit wide")
        if not a.width == b.width == output.width:
            raise ValueError(f"{name}: data widths differ")
        self.select = select
        self.a = a
        self.b = b
        self.output = output

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.select, self.a, self.b)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)

    def evaluate(self) -> None:
        self.output.drive(self.b.value if self.select.value else self.a.value)

    def activity(self) -> List[ActivityEvent]:
        return [ActivityEvent(self.name, KIND_COMB, float(self.output.toggles()))]

    def activity_kinds(self):
        return (KIND_COMB,)


class LookupLogic(CombinationalComponent):
    """Arbitrary combinational function given as a Python callable.

    Used for generic FSM next-state logic synthesised from a transition
    table.  The activity model charges the output toggles plus a
    configurable per-evaluation glitch factor proportional to the input
    toggles (wide random logic glitches more than a tidy XOR array).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Wire],
        output: Wire,
        function: Callable[..., int],
        glitch_factor: float = 0.5,
    ):
        super().__init__(name)
        if not inputs:
            raise ValueError(f"{name}: LookupLogic needs at least one input")
        if glitch_factor < 0:
            raise ValueError(f"{name}: glitch factor must be non-negative")
        self._inputs = tuple(inputs)
        self.output = output
        self.function = function
        self.glitch_factor = glitch_factor

    @property
    def input_wires(self) -> Sequence[Wire]:
        return self._inputs

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)

    def evaluate(self) -> None:
        self.output.drive(self.function(*(wire.value for wire in self._inputs)))

    def activity(self) -> List[ActivityEvent]:
        input_toggles = sum(
            hamming_distance(wire.value, wire.previous) for wire in self._inputs
        )
        amount = self.output.toggles() + self.glitch_factor * input_toggles
        return [ActivityEvent(self.name, KIND_COMB, float(amount))]

    def activity_kinds(self):
        return (KIND_COMB,)


class TransitionTable(CombinationalComponent):
    """Next-state logic from an explicit code-to-code mapping.

    The mapping must be total over the reachable codes; unknown codes
    raise at simulation time, which catches encoding bugs early.
    """

    def __init__(self, name: str, state: Wire, next_state: Wire, table: Dict[int, int]):
        super().__init__(name)
        if state.width != next_state.width:
            raise ValueError(f"{name}: state width mismatch")
        if not table:
            raise ValueError(f"{name}: transition table is empty")
        self.state = state
        self.next_state = next_state
        self.table = dict(table)

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.state,)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.next_state,)

    def evaluate(self) -> None:
        code = self.state.value
        if code not in self.table:
            raise KeyError(
                f"{self.name}: state code {code:#x} has no transition entry"
            )
        self.next_state.drive(self.table[code])

    def activity(self) -> List[ActivityEvent]:
        input_toggles = hamming_distance(self.state.value, self.state.previous)
        amount = self.next_state.toggles() + 0.5 * input_toggles
        return [ActivityEvent(self.name, KIND_COMB, float(amount))]

    def activity_kinds(self):
        return (KIND_COMB,)
