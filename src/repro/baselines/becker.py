"""Baseline [17]: spread-spectrum side-channel watermark (Becker et al.).

A hidden circuit leaks a pseudo-random (PN) bit sequence into the power
side channel; the verifier correlates measured traces against the known
PN sequence.  Like the paper's scheme it needs only the power pin, but
it differs in *what* is correlated:

* Becker: traces against a stored secret PN *sequence* (no reference
  device needed, but the PN generator is extra logic that exists only
  for the watermark);
* the paper: traces against a trusted *reference device*, with the
  leakage amplifying the FSM the IP already has.

This module implements the PN leakage component for the HDL substrate
and the matched-filter detector, so both schemes can be compared on
the same devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.acquisition.traces import TraceSet
from repro.hdl.combinational import LookupLogic
from repro.hdl.io import OutputPort
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister
from repro.hdl.wires import mask


def pn_sequence(
    length: int, seed: int, width: int = 16, taps=(0, 2, 3, 5)
) -> List[int]:
    """PN bit sequence from a Fibonacci LFSR (one output bit per cycle)."""
    if length <= 0:
        raise ValueError("length must be positive")
    if seed == 0 or not 0 < seed <= mask(width):
        raise ValueError(f"seed must be a non-zero {width}-bit value")
    state = seed
    bits: List[int] = []
    for _ in range(length):
        bits.append(state & 1)
        feedback = 0
        for tap in taps:
            feedback ^= (state >> tap) & 1
        state = (state >> 1) | (feedback << (width - 1))
    return bits


def attach_pn_leakage(
    netlist: Netlist,
    seed: int,
    leak_width: int = 4,
    prefix: str = "pn",
) -> DRegister:
    """Attach a Becker-style PN leakage generator to a netlist.

    A ``leak_width``-bit register toggles all bits when the PN bit is 1
    and holds when it is 0, driving dummy pads — a power modulation
    independent of the host FSM.
    """
    width = 16
    state = netlist.wire(f"{prefix}_state", width, seed)
    next_state = netlist.wire(f"{prefix}_next", width)
    leak = netlist.wire(f"{prefix}_leak", leak_width)
    leak_next = netlist.wire(f"{prefix}_leak_next", leak_width)

    def lfsr_step(value: int) -> int:
        feedback = 0
        for tap in (0, 2, 3, 5):
            feedback ^= (value >> tap) & 1
        return (value >> 1) | (feedback << (width - 1))

    netlist.add(
        LookupLogic(
            f"{prefix}_lfsr", (state,), next_state, lfsr_step, glitch_factor=0.2
        )
    )
    register = DRegister(f"{prefix}_reg", next_state, state, reset_value=seed)
    netlist.add(register)

    def leak_step(lfsr_value: int, leak_value: int) -> int:
        if lfsr_value & 1:
            return leak_value ^ mask(leak_width)
        return leak_value

    netlist.add(
        LookupLogic(
            f"{prefix}_mod", (state, leak), leak_next, leak_step, glitch_factor=0.0
        )
    )
    leak_register = DRegister(f"{prefix}_leakreg", leak_next, leak)
    netlist.add(leak_register)
    netlist.add(OutputPort(f"{prefix}_pads", leak))
    return leak_register


@dataclass(frozen=True)
class PNDetection:
    """Matched-filter detection outcome."""

    correlation: float
    threshold: float
    detected: bool


class BeckerDetector:
    """Correlates averaged traces against the expected PN power pattern.

    The expected pattern has one value per clock cycle: a PN bit of 1
    means the leak register toggles (power bump) in the *next* cycle.
    The detector expands the pattern to sample rate, mean-centres, and
    computes the normalised correlation.
    """

    def __init__(self, seed: int, threshold: float = 0.2):
        if threshold <= 0 or threshold >= 1:
            raise ValueError("threshold must be in (0, 1)")
        self.seed = seed
        self.threshold = threshold

    def expected_pattern(self, n_cycles: int, samples_per_cycle: int) -> np.ndarray:
        # The leak register toggles at clock edge c exactly when the
        # LFSR's output bit at step c is one (acquisition starts at
        # reset, so the sequences are aligned).
        bits = pn_sequence(n_cycles, self.seed)
        return np.repeat(np.asarray(bits, dtype=float), samples_per_cycle)

    def detect(
        self,
        traces: TraceSet,
        samples_per_cycle: int,
        n_average: Optional[int] = None,
    ) -> PNDetection:
        """Average traces and correlate with the PN pattern."""
        count = (
            traces.n_traces
            if n_average is None
            else min(n_average, traces.n_traces)
        )
        averaged = traces.matrix[:count].mean(axis=0)
        if averaged.size % samples_per_cycle != 0:
            raise ValueError("trace length is not a multiple of samples_per_cycle")
        n_cycles = averaged.size // samples_per_cycle
        pattern = self.expected_pattern(n_cycles, samples_per_cycle)
        a = averaged - averaged.mean()
        b = pattern - pattern.mean()
        denominator = float(np.sqrt(np.sum(a * a) * np.sum(b * b)))
        correlation = 0.0 if denominator == 0 else float(np.sum(a * b) / denominator)
        return PNDetection(
            correlation=correlation,
            threshold=self.threshold,
            detected=correlation >= self.threshold,
        )
