"""Baseline [12]: FSM watermarking by added states/transitions
(Torunoglu & Charbon-style).

The traditional FSM watermark "adds redundancy inside the FSM by adding
new states and/or new transitions".  A secret input word steers the
machine through the added states, whose outputs spell the author's
signature.  The paper's scheme deliberately avoids this (its leakage
component adds *no* edge or state to the FSM); this baseline exists to
measure what that buys:

* state overhead (extra states vs the original machine),
* verification again requires functional access to inputs/outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Tuple

from repro.fsm.machine import MealyMachine

State = Hashable
Symbol = Hashable


@dataclass(frozen=True)
class StateInsertionWatermark:
    """The secret steering word and the signature read back."""

    steering_word: Tuple[Symbol, ...]
    signature: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.steering_word:
            raise ValueError("steering word must be non-empty")
        if len(self.signature) != len(self.steering_word):
            raise ValueError("signature length must match the steering word")


@dataclass(frozen=True)
class EmbeddingStats:
    """Overhead accounting for the embedding."""

    original_states: int
    added_states: int

    @property
    def overhead_ratio(self) -> float:
        return self.added_states / self.original_states


def embed_state_insertion(
    machine: MealyMachine, watermark: StateInsertionWatermark
) -> Tuple[MealyMachine, EmbeddingStats]:
    """Embed the watermark by grafting a chain of new states.

    From the initial state, the first steering symbol enters the added
    chain; each correct symbol advances it and emits one signature
    symbol; any wrong symbol falls back to the original machine's
    behaviour from reset (so casual operation is unaffected after
    resynchronisation).  The final chain state returns to the initial
    state.
    """
    for symbol in watermark.steering_word:
        if symbol not in machine.alphabet:
            raise ValueError(f"steering symbol {symbol!r} not in the alphabet")

    chain = [f"__wm_state_{i}" for i in range(len(watermark.steering_word))]
    all_states = tuple(machine.states) + tuple(chain)
    original = set(machine.states)
    word = watermark.steering_word

    def transition(state: State, symbol: Symbol) -> State:
        if state in original:
            if state == machine.initial_state and symbol == word[0]:
                return chain[0]
            return machine.step(state, symbol)[0]
        index = chain.index(state)
        if index + 1 < len(word):
            if symbol == word[index + 1]:
                return chain[index + 1]
            return machine.initial_state
        return machine.initial_state

    def output(state: State, symbol: Symbol) -> int:
        if state in original:
            if state == machine.initial_state and symbol == word[0]:
                return watermark.signature[0]
            return machine.step(state, symbol)[1]
        index = chain.index(state)
        if index + 1 < len(word) and symbol == word[index + 1]:
            return watermark.signature[index + 1]
        return machine.step(machine.initial_state, symbol)[1]

    marked = MealyMachine(
        states=all_states,
        alphabet=machine.alphabet,
        transition=transition,
        output=output,
        initial_state=machine.initial_state,
    )
    stats = EmbeddingStats(
        original_states=len(machine.states), added_states=len(chain)
    )
    return marked, stats


def verify_state_insertion(
    machine: MealyMachine, watermark: StateInsertionWatermark
) -> bool:
    """Steer the machine with the secret word; check the signature."""
    _states, outputs = machine.run(watermark.steering_word)
    return tuple(outputs) == tuple(watermark.signature)


def visited_watermark_states(
    machine: MealyMachine, watermark: StateInsertionWatermark
) -> List[State]:
    """The added states the steering word actually walks through."""
    states, _outputs = machine.run(watermark.steering_word)
    return [s for s in states if isinstance(s, str) and s.startswith("__wm_state_")]
