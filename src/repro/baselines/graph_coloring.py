"""Baseline [13]/[9]: constraint-based watermarking of graph coloring.

The paper's related work traces FSM watermarking back to watermarking
combinatorial-optimisation solutions (Qu & Potkonjak for graph
coloring, Wolfe/Wong/Potkonjak for partitioning): the author's
signature is embedded as *extra constraints* that any genuine solution
satisfies, and ownership is argued from the improbability of a random
solution satisfying them all.

Implementation: for each signature bit, a keyed PRNG picks a pair of
currently non-adjacent vertices; bit 1 adds the edge (forcing the two
vertices into different colours), bit 0 leaves the pair unconstrained
but still *consumes* it (so the constraint positions themselves encode
the signature).  Verification re-derives the pair sequence from the
key and checks the published colouring separates exactly the bit-1
pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import networkx as nx
import numpy as np

Vertex = Hashable
Coloring = Dict[Vertex, int]


@dataclass(frozen=True)
class GraphWatermark:
    """The embedded constraints for one signature."""

    key: int
    signature: Tuple[int, ...]
    constrained_pairs: Tuple[Tuple[Vertex, Vertex], ...]

    def __post_init__(self) -> None:
        if len(self.constrained_pairs) != len(self.signature):
            raise ValueError("one constrained pair per signature bit required")


def _pair_sequence(
    graph: nx.Graph, n_pairs: int, key: int
) -> List[Tuple[Vertex, Vertex]]:
    """Keyed pseudo-random sequence of distinct non-adjacent pairs."""
    rng = np.random.default_rng(key)
    vertices = sorted(graph.nodes, key=repr)
    if len(vertices) < 2:
        raise ValueError("graph needs at least two vertices")
    pairs: List[Tuple[Vertex, Vertex]] = []
    seen = set()
    attempts = 0
    limit = 200 * n_pairs + 1000
    while len(pairs) < n_pairs:
        attempts += 1
        if attempts > limit:
            raise ValueError(
                f"could not find {n_pairs} non-adjacent pairs (graph too dense)"
            )
        i, j = rng.integers(0, len(vertices), size=2)
        if i == j:
            continue
        a, b = vertices[min(i, j)], vertices[max(i, j)]
        if (a, b) in seen or graph.has_edge(a, b):
            continue
        seen.add((a, b))
        pairs.append((a, b))
    return pairs


def embed_signature(
    graph: nx.Graph, signature: Sequence[int], key: int
) -> Tuple[nx.Graph, GraphWatermark]:
    """Embed a bit signature as extra colouring constraints.

    Returns the constrained copy of the graph and the watermark record
    needed for verification.
    """
    bits = tuple(int(b) for b in signature)
    if not bits:
        raise ValueError("signature must be non-empty")
    if any(b not in (0, 1) for b in bits):
        raise ValueError("signature must be bits")
    constrained = graph.copy()
    pairs = _pair_sequence(graph, len(bits), key)
    for bit, (a, b) in zip(bits, pairs):
        if bit:
            constrained.add_edge(a, b)
    return constrained, GraphWatermark(
        key=key, signature=bits, constrained_pairs=tuple(pairs)
    )


def greedy_coloring(graph: nx.Graph) -> Coloring:
    """A deterministic greedy colouring (largest-first strategy)."""
    return nx.coloring.greedy_color(graph, strategy="largest_first")


def is_proper_coloring(graph: nx.Graph, coloring: Coloring) -> bool:
    """Every edge separates its endpoints' colours."""
    return all(coloring[a] != coloring[b] for a, b in graph.edges)


def verify_signature(
    original_graph: nx.Graph, coloring: Coloring, watermark: GraphWatermark
) -> bool:
    """Check a published colouring against the embedded signature.

    Re-derives the keyed pair sequence from the *original* graph and
    requires every bit-1 pair to be separated.  (Bit-0 pairs carry no
    constraint — their information lies in which positions are
    constrained.)
    """
    pairs = _pair_sequence(original_graph, len(watermark.signature), watermark.key)
    if tuple(pairs) != watermark.constrained_pairs:
        return False
    for bit, (a, b) in zip(watermark.signature, pairs):
        if bit and coloring.get(a) == coloring.get(b):
            return False
    return True


def coincidence_probability(
    original_graph: nx.Graph,
    watermark: GraphWatermark,
    trials: int = 200,
    seed: int = 0,
) -> float:
    """Empirical probability that an *unwatermarked* solution passes.

    Colours the original (unconstrained) graph with randomised vertex
    orders and counts how often the colouring happens to satisfy every
    bit-1 constraint — the false-ownership probability the scheme's
    proof rests on.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = np.random.default_rng(seed)
    vertices = list(original_graph.nodes)
    hits = 0
    for _trial in range(trials):
        order = list(rng.permutation(len(vertices)))
        coloring: Coloring = {}
        for index in order:
            vertex = vertices[index]
            neighbour_colors = {
                coloring[n] for n in original_graph.neighbors(vertex) if n in coloring
            }
            color = 0
            while color in neighbour_colors:
                color += 1
            coloring[vertex] = color
        ok = all(
            coloring[a] != coloring[b]
            for bit, (a, b) in zip(watermark.signature, watermark.constrained_pairs)
            if bit
        )
        hits += ok
    return hits / trials


def overhead_in_colors(
    original_graph: nx.Graph, constrained_graph: nx.Graph
) -> int:
    """Extra colours the constraints cost (greedy estimate)."""
    base = max(greedy_coloring(original_graph).values()) + 1
    marked = max(greedy_coloring(constrained_graph).values()) + 1
    return marked - base
