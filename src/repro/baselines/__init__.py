"""Related-work baseline watermarking/verification schemes.

* :mod:`repro.baselines.output_mark` — output-mark insertion [16];
* :mod:`repro.baselines.state_insertion` — added-state FSM watermark [12];
* :mod:`repro.baselines.becker` — spread-spectrum side-channel watermark [17].
"""

from repro.baselines.becker import (
    BeckerDetector,
    PNDetection,
    attach_pn_leakage,
    pn_sequence,
)
from repro.baselines.graph_coloring import (
    GraphWatermark,
    coincidence_probability,
    embed_signature,
    greedy_coloring,
    is_proper_coloring,
    overhead_in_colors,
    verify_signature,
)
from repro.baselines.output_mark import (
    OutputMark,
    OutputMarkVerifier,
    collision_rate,
    embed_output_mark,
    response_to,
    verify_output_mark,
)
from repro.baselines.state_insertion import (
    EmbeddingStats,
    StateInsertionWatermark,
    embed_state_insertion,
    verify_state_insertion,
    visited_watermark_states,
)

__all__ = [
    "OutputMark",
    "OutputMarkVerifier",
    "embed_output_mark",
    "verify_output_mark",
    "response_to",
    "collision_rate",
    "StateInsertionWatermark",
    "EmbeddingStats",
    "embed_state_insertion",
    "verify_state_insertion",
    "visited_watermark_states",
    "pn_sequence",
    "attach_pn_leakage",
    "BeckerDetector",
    "PNDetection",
    "GraphWatermark",
    "embed_signature",
    "verify_signature",
    "greedy_coloring",
    "is_proper_coloring",
    "coincidence_probability",
    "overhead_in_colors",
]
