"""Baseline [16]: output-mark watermark verification (Le Gal & Bossuet).

The comparator verifies a watermark by "reading the answer of the IC to
a specific input sequence": the embedder patches a Mealy machine so a
secret trigger input sequence makes the outputs spell a signature.

Contrast with the paper's scheme: verification requires functional
access to the IP's inputs and outputs, which is often unavailable once
the IP is embedded in a larger system — the motivation for the paper's
side-channel verification, which needs only the power pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.fsm.machine import MealyMachine

State = Hashable
Symbol = Hashable


@dataclass(frozen=True)
class OutputMark:
    """The secret trigger and the signature it must elicit."""

    trigger: Tuple[Symbol, ...]
    signature: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.trigger:
            raise ValueError("trigger sequence must be non-empty")
        if len(self.signature) != len(self.trigger):
            raise ValueError("signature must be as long as the trigger")


def embed_output_mark(
    machine: MealyMachine, mark: OutputMark
) -> MealyMachine:
    """Return a machine whose outputs spell the mark under the trigger.

    A parallel chain of fresh "mark states" shadows the original
    behaviour while the trigger is being consumed; any deviation from
    the trigger falls back into the original machine, so functional
    behaviour under normal inputs is preserved except for the output
    overrides on the exact trigger path.
    """
    for symbol in mark.trigger:
        if symbol not in machine.alphabet:
            raise ValueError(f"trigger symbol {symbol!r} not in the alphabet")

    chain_states = [f"__mark_{i}" for i in range(len(mark.trigger))]
    all_states = tuple(machine.states) + tuple(chain_states)
    original_states = set(machine.states)

    def transition(state: State, symbol: Symbol) -> State:
        if state in original_states:
            if state == machine.initial_state and symbol == mark.trigger[0]:
                return (
                    chain_states[0]
                    if len(chain_states) > 1
                    else _landing(state, symbol)
                )
            return machine.step(state, symbol)[0]
        index = chain_states.index(state)
        if index + 1 < len(mark.trigger) and symbol == mark.trigger[index + 1]:
            if index + 2 <= len(chain_states) - 1:
                return chain_states[index + 1]
            return _landing(state, symbol)
        # Wrong symbol: abandon the chain, resynchronise at reset state.
        return machine.initial_state

    def _landing(state: State, symbol: Symbol) -> State:
        # After the full trigger, resume normal operation from reset.
        return machine.initial_state

    def output(state: State, symbol: Symbol) -> int:
        if state in original_states:
            if state == machine.initial_state and symbol == mark.trigger[0]:
                return mark.signature[0]
            return machine.step(state, symbol)[1]
        index = chain_states.index(state)
        if index + 1 < len(mark.trigger) and symbol == mark.trigger[index + 1]:
            return mark.signature[index + 1]
        return machine.step(machine.initial_state, symbol)[1]

    return MealyMachine(
        states=all_states,
        alphabet=machine.alphabet,
        transition=transition,
        output=output,
        initial_state=machine.initial_state,
    )


def verify_output_mark(machine: MealyMachine, mark: OutputMark) -> bool:
    """Drive the trigger from reset and compare outputs to the signature."""
    _states, outputs = machine.run(mark.trigger)
    return tuple(outputs) == tuple(mark.signature)


def response_to(machine: MealyMachine, inputs: Sequence[Symbol]) -> List[int]:
    """The machine's output response to an input sequence (from reset)."""
    _states, outputs = machine.run(inputs)
    return outputs


def collision_rate(
    machine: MealyMachine,
    mark: OutputMark,
    probe_sequences: Sequence[Sequence[Symbol]],
) -> float:
    """Fraction of probe inputs that accidentally reproduce the signature.

    A good output mark should only answer to its trigger.
    """
    if not probe_sequences:
        raise ValueError("need at least one probe sequence")
    hits = 0
    for probe in probe_sequences:
        if len(probe) != len(mark.trigger):
            continue
        if tuple(response_to(machine, probe)) == tuple(mark.signature) and tuple(
            probe
        ) != tuple(mark.trigger):
            hits += 1
    return hits / len(probe_sequences)


@dataclass
class OutputMarkVerifier:
    """Baseline verifier with the same call shape as WatermarkVerifier.

    ``requires_io_access`` is the comparison point: this verifier
    cannot run on a device whose IP ports are not reachable.
    """

    mark: OutputMark
    requires_io_access: bool = True

    def verify(self, machine: MealyMachine) -> Dict[str, object]:
        authentic = verify_output_mark(machine, self.mark)
        return {
            "method": "output-mark [16]",
            "authentic": authentic,
            "requires_io_access": self.requires_io_access,
        }
