"""repro — reproduction of Marchand, Bossuet & Jung, "IP Watermark
Verification Based on Power Consumption Analysis" (SOCC 2014).

The library implements the paper's watermark-verification scheme end to
end on a simulated hardware substrate:

* :mod:`repro.core` — the correlation computation process, the
  mean/variance distinguishers with confidence distances, and the
  (alpha, k, m, n1, n2) parameter mathematics;
* :mod:`repro.fsm` + :mod:`repro.hdl` — FSMs, counters and the
  watermark leakage component as cycle-accurate netlists;
* :mod:`repro.crypto` — GF(2^8), the AES SBox and AES-128;
* :mod:`repro.power` + :mod:`repro.acquisition` — the synthetic power
  chain replacing the paper's FPGAs and oscilloscope;
* :mod:`repro.experiments` — drivers reproducing Fig. 4, Fig. 5 and
  Tables I/II;
* :mod:`repro.sweeps` — declarative scenario sweeps over campaign
  axes with multiprocess execution and a resumable result store;
* :mod:`repro.baselines` — related-work comparators.

Quickstart::

    from repro import run_campaign
    outcome = run_campaign()
    print(outcome.verdict_matrix())
"""

from repro.acquisition import (
    ADCConfig,
    Device,
    MeasurementBench,
    Oscilloscope,
    TraceSet,
    acquire_traces,
    prime_fleet_activity,
)
from repro.core import (
    CorrelationProcess,
    CorrelationResult,
    HigherMeanDistinguisher,
    LowerVarianceDistinguisher,
    PAPER_PLAN,
    ProcessParameters,
    WatermarkVerifier,
    pearson,
    plan_parameters,
    reuse_probability,
    reuse_probability_limit,
)
from repro.experiments import (
    CampaignConfig,
    CampaignOutcome,
    build_device_fleet,
    build_paper_ip,
    run_campaign,
)
from repro.fsm import WatermarkedIP, attach_leakage_component
from repro.power import NoiseModel, PowerModel, VariationModel, WaveformConfig
from repro.sweeps import (
    GridAxis,
    RandomAxis,
    SweepSpec,
    SweepStore,
    expand_scenarios,
    run_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Device",
    "prime_fleet_activity",
    "TraceSet",
    "Oscilloscope",
    "ADCConfig",
    "MeasurementBench",
    "acquire_traces",
    "pearson",
    "CorrelationProcess",
    "CorrelationResult",
    "ProcessParameters",
    "WatermarkVerifier",
    "HigherMeanDistinguisher",
    "LowerVarianceDistinguisher",
    "reuse_probability",
    "reuse_probability_limit",
    "plan_parameters",
    "PAPER_PLAN",
    "WatermarkedIP",
    "attach_leakage_component",
    "PowerModel",
    "NoiseModel",
    "VariationModel",
    "WaveformConfig",
    "CampaignConfig",
    "CampaignOutcome",
    "run_campaign",
    "build_device_fleet",
    "build_paper_ip",
    "GridAxis",
    "RandomAxis",
    "SweepSpec",
    "SweepStore",
    "expand_scenarios",
    "run_sweep",
]
