"""Cryptographic substrate: GF(2^8), the AES SBox and AES-128.

The paper's leakage component stores the AES SBox in a small RAM; this
package builds that SBox from first principles and ships the complete
cipher it belongs to.
"""

from repro.crypto.aes import decrypt_block, decrypt_bytes, encrypt_block, encrypt_bytes
from repro.crypto.gf256 import gf_add, gf_inverse, gf_mul, gf_pow
from repro.crypto.sbox import INVERSE_SBOX, SBOX, build_inverse_sbox, build_sbox

__all__ = [
    "SBOX",
    "INVERSE_SBOX",
    "build_sbox",
    "build_inverse_sbox",
    "gf_add",
    "gf_mul",
    "gf_pow",
    "gf_inverse",
    "encrypt_block",
    "decrypt_block",
    "encrypt_bytes",
    "decrypt_bytes",
]
