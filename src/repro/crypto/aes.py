"""A from-scratch AES-128 implementation.

The paper's leakage component borrows the AES SBox, so the cipher it
belongs to is part of the substrate inventory.  This is a plain,
readable byte-oriented implementation of FIPS-197 AES-128 (encrypt and
decrypt); it is validated against the FIPS-197 and NIST test vectors in
the test suite.  It is not constant time and is not meant for
production cryptography — it exists so the SBox in the watermark RAM is
the real artefact from a complete, working cipher.

The state is kept as a list of 16 bytes in column-major order, matching
FIPS-197: ``state[row + 4 * col]``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.crypto.gf256 import gf_mul
from repro.crypto.sbox import INVERSE_SBOX, SBOX

#: Number of 32-bit words in an AES-128 key.
KEY_WORDS = 4

#: Number of rounds for AES-128.
ROUNDS = 10

#: Round constants for the key schedule (first byte of each Rcon word).
RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

BLOCK_SIZE = 16
KEY_SIZE = 16


def _check_block(data: Sequence[int], name: str, size: int) -> List[int]:
    """Validate and copy a byte sequence of the expected size."""
    block = list(data)
    if len(block) != size:
        raise ValueError(f"{name} must be {size} bytes, got {len(block)}")
    for byte in block:
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"{name} contains a non-byte value: {byte}")
    return block


def expand_key(key: Sequence[int]) -> List[List[int]]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each."""
    key_bytes = _check_block(key, "key", KEY_SIZE)
    words: List[List[int]] = [key_bytes[4 * i : 4 * i + 4] for i in range(KEY_WORDS)]
    for i in range(KEY_WORDS, 4 * (ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % KEY_WORDS == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // KEY_WORDS - 1]
        words.append([a ^ b for a, b in zip(words[i - KEY_WORDS], temp)])
    round_keys = []
    for round_index in range(ROUNDS + 1):
        round_key: List[int] = []
        for word in words[4 * round_index : 4 * round_index + 4]:
            round_key.extend(word)
        round_keys.append(round_key)
    return round_keys


def add_round_key(state: List[int], round_key: Sequence[int]) -> List[int]:
    """XOR the state with one round key."""
    return [s ^ k for s, k in zip(state, round_key)]


def sub_bytes(state: List[int]) -> List[int]:
    """Apply the SBox to every state byte."""
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: List[int]) -> List[int]:
    """Apply the inverse SBox to every state byte."""
    return [INVERSE_SBOX[b] for b in state]


def _rows(state: Sequence[int]) -> List[List[int]]:
    """View the column-major flat state as four rows."""
    return [[state[row + 4 * col] for col in range(4)] for row in range(4)]


def _from_rows(rows: Sequence[Sequence[int]]) -> List[int]:
    """Flatten four rows back into column-major order."""
    return [rows[row][col] for col in range(4) for row in range(4)]


def shift_rows(state: List[int]) -> List[int]:
    """Rotate row r left by r positions."""
    rows = _rows(state)
    shifted = [rows[r][r:] + rows[r][:r] for r in range(4)]
    return _from_rows(shifted)


def inv_shift_rows(state: List[int]) -> List[int]:
    """Rotate row r right by r positions."""
    rows = _rows(state)
    shifted = [rows[r][-r:] + rows[r][:-r] if r else list(rows[r]) for r in range(4)]
    return _from_rows(shifted)


def _mix_single_column(
    column: Sequence[int], matrix: Sequence[Sequence[int]]
) -> List[int]:
    """Multiply one state column by a 4x4 GF(2^8) matrix."""
    mixed = []
    for row in matrix:
        value = 0
        for coefficient, byte in zip(row, column):
            value ^= gf_mul(coefficient, byte)
        mixed.append(value)
    return mixed


_MIX_MATRIX = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
_INV_MIX_MATRIX = (
    (0x0E, 0x0B, 0x0D, 0x09),
    (0x09, 0x0E, 0x0B, 0x0D),
    (0x0D, 0x09, 0x0E, 0x0B),
    (0x0B, 0x0D, 0x09, 0x0E),
)


def mix_columns(state: List[int]) -> List[int]:
    """Apply the MixColumns diffusion step to all four columns."""
    result: List[int] = []
    for col in range(4):
        column = state[4 * col : 4 * col + 4]
        result.extend(_mix_single_column(column, _MIX_MATRIX))
    return result


def inv_mix_columns(state: List[int]) -> List[int]:
    """Apply the inverse MixColumns step to all four columns."""
    result: List[int] = []
    for col in range(4):
        column = state[4 * col : 4 * col + 4]
        result.extend(_mix_single_column(column, _INV_MIX_MATRIX))
    return result


def encrypt_block(plaintext: Sequence[int], key: Sequence[int]) -> List[int]:
    """Encrypt one 16-byte block with AES-128."""
    state = _check_block(plaintext, "plaintext", BLOCK_SIZE)
    round_keys = expand_key(key)
    state = add_round_key(state, round_keys[0])
    for round_index in range(1, ROUNDS):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, round_keys[round_index])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[ROUNDS])
    return state


def decrypt_block(ciphertext: Sequence[int], key: Sequence[int]) -> List[int]:
    """Decrypt one 16-byte block with AES-128."""
    state = _check_block(ciphertext, "ciphertext", BLOCK_SIZE)
    round_keys = expand_key(key)
    state = add_round_key(state, round_keys[ROUNDS])
    for round_index in range(ROUNDS - 1, 0, -1):
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        state = add_round_key(state, round_keys[round_index])
        state = inv_mix_columns(state)
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    state = add_round_key(state, round_keys[0])
    return state


def encrypt_bytes(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block given as ``bytes``."""
    return bytes(encrypt_block(list(plaintext), list(key)))


def decrypt_bytes(ciphertext: bytes, key: bytes) -> bytes:
    """Decrypt one 16-byte block given as ``bytes``."""
    return bytes(decrypt_block(list(ciphertext), list(key)))


def encrypt_ecb(plaintext: Iterable[int], key: Sequence[int]) -> List[int]:
    """Encrypt a multiple-of-16-byte message in ECB mode.

    ECB is provided only to exercise the block cipher over longer
    inputs in tests; it is not a recommended mode.
    """
    data = list(plaintext)
    if len(data) % BLOCK_SIZE != 0:
        raise ValueError(f"ECB input must be a multiple of {BLOCK_SIZE} bytes")
    output: List[int] = []
    for offset in range(0, len(data), BLOCK_SIZE):
        output.extend(encrypt_block(data[offset : offset + BLOCK_SIZE], key))
    return output


def decrypt_ecb(ciphertext: Iterable[int], key: Sequence[int]) -> List[int]:
    """Decrypt a multiple-of-16-byte ECB message."""
    data = list(ciphertext)
    if len(data) % BLOCK_SIZE != 0:
        raise ValueError(f"ECB input must be a multiple of {BLOCK_SIZE} bytes")
    output: List[int] = []
    for offset in range(0, len(data), BLOCK_SIZE):
        output.extend(decrypt_block(data[offset : offset + BLOCK_SIZE], key))
    return output
