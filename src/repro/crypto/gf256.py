"""Arithmetic in the finite field GF(2^8) used by the AES SBox.

The AES substitution table is built from multiplicative inversion in
GF(2^8) modulo the Rijndael polynomial ``x^8 + x^4 + x^3 + x + 1``
(0x11B), followed by an affine transformation over GF(2).  The paper's
side-channel leakage component stores this SBox in RAM; generating it
from first principles (rather than hard-coding the table) lets the test
suite validate the construction against FIPS-197.

All functions operate on Python integers in ``[0, 255]``.
"""

from __future__ import annotations

from typing import List

#: The Rijndael reduction polynomial x^8 + x^4 + x^3 + x + 1.
RIJNDAEL_POLY = 0x11B

#: Mask selecting the low eight bits of a field element.
BYTE_MASK = 0xFF


def _check_byte(value: int, name: str = "value") -> None:
    """Raise ``ValueError`` unless ``value`` is an int in [0, 255]."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value <= BYTE_MASK:
        raise ValueError(f"{name} must be in [0, 255], got {value}")


def gf_add(a: int, b: int) -> int:
    """Add two GF(2^8) elements (XOR of the coefficient vectors)."""
    _check_byte(a, "a")
    _check_byte(b, "b")
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiply two GF(2^8) elements modulo the Rijndael polynomial.

    Implemented with the standard shift-and-reduce ("Russian peasant")
    loop so the reduction polynomial is applied explicitly.
    """
    _check_byte(a, "a")
    _check_byte(b, "b")
    product = 0
    while b:
        if b & 1:
            product ^= a
        a <<= 1
        if a & 0x100:
            a ^= RIJNDAEL_POLY
        b >>= 1
    return product & BYTE_MASK


def gf_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to ``exponent`` by square-and-multiply.

    ``a ** 0`` is 1 by convention, including for ``a == 0``.
    """
    _check_byte(a, "a")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    result = 1
    base = a
    while exponent:
        if exponent & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        exponent >>= 1
    return result


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8), with the AES convention inv(0) = 0.

    Uses Fermat's little theorem for the 255-element multiplicative
    group: ``a^-1 = a^(2^8 - 2) = a^254``.
    """
    _check_byte(a, "a")
    if a == 0:
        return 0
    return gf_pow(a, 254)


def gf_xtime(a: int) -> int:
    """Multiply by x (i.e. by 0x02) — the primitive AES MixColumns step."""
    _check_byte(a, "a")
    a <<= 1
    if a & 0x100:
        a ^= RIJNDAEL_POLY
    return a & BYTE_MASK


def inverse_table() -> List[int]:
    """Return the full 256-entry inversion table (index 0 maps to 0)."""
    return [gf_inverse(a) for a in range(256)]


def is_generator(a: int) -> bool:
    """Return True if ``a`` generates the multiplicative group GF(2^8)*.

    A non-zero element is a generator when its order is exactly 255,
    i.e. no proper divisor d of 255 satisfies ``a^d == 1``.
    """
    _check_byte(a, "a")
    if a == 0:
        return False
    for divisor in (1, 3, 5, 15, 17, 51, 85):
        if gf_pow(a, divisor) == 1:
            return False
    return gf_pow(a, 255) == 1
