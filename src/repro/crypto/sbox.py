"""The AES substitution box (SBox) used by the leakage component.

The paper's side-channel leakage component stores the AES SBox in a
2^8-entry RAM and feeds it ``state XOR Kw``.  This module builds the
SBox from first principles — multiplicative inversion in GF(2^8)
followed by the AES affine transformation — and also provides the
inverse SBox so the full AES cipher in :mod:`repro.crypto.aes` can
decrypt.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.crypto.gf256 import BYTE_MASK, gf_inverse

#: Constant added by the AES affine transformation.
AFFINE_CONSTANT = 0x63

#: Bit rotations used by the affine transformation: b ^ rotl(b, 1..4).
AFFINE_ROTATIONS: Tuple[int, ...] = (1, 2, 3, 4)


def _rotl8(value: int, amount: int) -> int:
    """Rotate an 8-bit value left by ``amount`` bits."""
    amount %= 8
    return ((value << amount) | (value >> (8 - amount))) & BYTE_MASK


def affine_transform(value: int) -> int:
    """Apply the AES affine map over GF(2) to one byte.

    ``s = b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63``
    """
    if not 0 <= value <= BYTE_MASK:
        raise ValueError(f"value must be in [0, 255], got {value}")
    result = value
    for amount in AFFINE_ROTATIONS:
        result ^= _rotl8(value, amount)
    return result ^ AFFINE_CONSTANT


def sbox_entry(value: int) -> int:
    """Compute one SBox entry: affine(inverse(value))."""
    return affine_transform(gf_inverse(value))


def build_sbox() -> List[int]:
    """Build the full 256-entry AES SBox from first principles."""
    return [sbox_entry(value) for value in range(256)]


def build_inverse_sbox() -> List[int]:
    """Build the inverse SBox by inverting the forward permutation."""
    forward = build_sbox()
    inverse = [0] * 256
    for index, output in enumerate(forward):
        inverse[output] = index
    return inverse


#: The AES SBox, generated once at import time.
SBOX: Tuple[int, ...] = tuple(build_sbox())

#: The inverse AES SBox.
INVERSE_SBOX: Tuple[int, ...] = tuple(build_inverse_sbox())

#: First eight entries of the FIPS-197 table, used as an import-time
#: sanity anchor (the test suite checks the complete table).
_FIPS_197_PREFIX = (0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5)

if SBOX[:8] != _FIPS_197_PREFIX:  # pragma: no cover - construction bug guard
    raise AssertionError("generated AES SBox does not match FIPS-197")


def sbox_lookup(value: int) -> int:
    """Look up one byte in the forward SBox with bounds checking."""
    if not 0 <= value <= BYTE_MASK:
        raise ValueError(f"value must be in [0, 255], got {value}")
    return SBOX[value]


def inverse_sbox_lookup(value: int) -> int:
    """Look up one byte in the inverse SBox with bounds checking."""
    if not 0 <= value <= BYTE_MASK:
        raise ValueError(f"value must be in [0, 255], got {value}")
    return INVERSE_SBOX[value]
