"""Dynamic-power model: switching activity → per-cycle power.

CMOS dynamic power is ``P = alpha * C * V^2 * f`` summed over nodes;
for a fixed voltage and clock this reduces to a weighted sum of toggle
counts, with weights proportional to the switched capacitance of each
node class.  The default weights reflect the usual FPGA ordering:

* I/O pads drive off-chip loads — an order of magnitude above internal
  nodes;
* block-RAM ports (decoder + bit lines) are heavier than a flip-flop;
* registers and clock buffers are the reference class;
* LUT/combinational nodes are lighter than registers.

A :class:`PowerModel` also supports per-component weight overrides,
which is how per-device process variation perturbs the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

import numpy as np

from repro.hdl.activity import ActivityTrace
from repro.hdl.component import (
    ACTIVITY_KINDS,
    KIND_CLOCK,
    KIND_COMB,
    KIND_IO,
    KIND_RAM,
    KIND_REGISTER,
)

#: Default switched-capacitance weights per activity kind.
DEFAULT_KIND_WEIGHTS: Dict[str, float] = {
    KIND_REGISTER: 1.0,
    KIND_COMB: 0.4,
    KIND_RAM: 0.9,
    KIND_IO: 2.5,
    KIND_CLOCK: 1.0,
}


@dataclass(frozen=True)
class PowerModel:
    """Maps an :class:`ActivityTrace` to a per-cycle power series."""

    kind_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KIND_WEIGHTS)
    )
    component_scale: Mapping[str, float] = field(default_factory=dict)
    static_power: float = 0.5

    def __post_init__(self) -> None:
        for kind in self.kind_weights:
            if kind not in ACTIVITY_KINDS:
                raise ValueError(f"unknown activity kind {kind!r}")
        for kind, weight in self.kind_weights.items():
            if weight < 0:
                raise ValueError(f"weight for {kind!r} must be non-negative")
        for component, scale in self.component_scale.items():
            if scale < 0:
                raise ValueError(
                    f"scale for component {component!r} must be non-negative"
                )
        if self.static_power < 0:
            raise ValueError("static power must be non-negative")

    def weight_for(self, component: str, kind: str) -> float:
        """Effective weight of one activity channel."""
        if kind not in ACTIVITY_KINDS:
            raise ValueError(f"unknown activity kind {kind!r}")
        base = self.kind_weights.get(kind, 0.0)
        return base * self.component_scale.get(component, 1.0)

    def channel_weights(self, trace: ActivityTrace) -> np.ndarray:
        """Weight vector aligned with the trace's channels."""
        return np.array(
            [self.weight_for(c.component, c.kind) for c in trace.channels]
        )

    def cycle_power(self, trace: ActivityTrace) -> np.ndarray:
        """Per-cycle dynamic + static power for one activity trace."""
        dynamic = trace.weighted_series(self.channel_weights(trace))
        return dynamic + self.static_power

    def with_component_scales(self, scales: Mapping[str, float]) -> "PowerModel":
        """A copy with additional per-component scales (composed)."""
        merged = dict(self.component_scale)
        for component, scale in scales.items():
            merged[component] = merged.get(component, 1.0) * scale
        return replace(self, component_scale=merged)


def cycle_power_breakdown(
    model: PowerModel, trace: ActivityTrace
) -> Dict[str, np.ndarray]:
    """Per-kind contribution to the per-cycle power (for diagnostics)."""
    breakdown: Dict[str, np.ndarray] = {}
    for kind in trace.kinds():
        columns = [
            i for i, channel in enumerate(trace.channels) if channel.kind == kind
        ]
        weights = np.array(
            [
                model.weight_for(trace.channels[i].component, kind)
                for i in columns
            ]
        )
        breakdown[kind] = trace.matrix[:, columns] @ weights
    return breakdown


def variance_share(model: PowerModel, trace: ActivityTrace) -> Dict[str, float]:
    """Fraction of the *time-varying* power variance due to each kind.

    Diagnostic used when calibrating the model: the paper's Table I
    requires the shared (counter + clock) components to dominate the
    keyed (RAM + IO) components in variance, while keeping the keyed
    part measurable.
    """
    breakdown = cycle_power_breakdown(model, trace)
    total = model.cycle_power(trace)
    total_variance = float(np.var(total))
    if total_variance == 0:
        return {kind: 0.0 for kind in breakdown}
    return {
        kind: float(np.var(series) / total_variance)
        for kind, series in breakdown.items()
    }
