"""Measurement-noise model for the synthetic oscilloscope.

The dominant noise in a shunt-resistor power measurement is wideband
amplifier/thermal noise, modelled as i.i.d. Gaussian samples.  A slow
baseline drift (random-walk low-frequency noise) is also available —
it is largely removed by the Pearson correlation's mean subtraction,
but including it keeps single traces realistic.

``sigma`` is expressed *relative to the standard deviation of the
deterministic waveform*, so the acquisition signal-to-noise ratio is a
single, interpretable calibration knob: the default of 1.0 (single-
trace SNR of one) puts the k = 50 averaged matching correlation near
0.98 and reproduces the paper's distinguisher behaviour; sigma = 1.8
lands the matching mean on the paper's 0.94 at the cost of a thinner
variance margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Additive noise applied to each acquired trace."""

    sigma: float = 1.0
    drift_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("noise sigma must be non-negative")
        if self.drift_sigma < 0:
            raise ValueError("drift sigma must be non-negative")

    def sample(
        self,
        n_traces: int,
        n_samples: int,
        signal_std: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Noise matrix of shape ``(n_traces, n_samples)``.

        ``signal_std`` scales the relative sigmas into absolute units.
        """
        if n_traces <= 0 or n_samples <= 0:
            raise ValueError("n_traces and n_samples must be positive")
        if signal_std < 0:
            raise ValueError("signal_std must be non-negative")
        noise = rng.normal(
            0.0, self.sigma * signal_std, size=(n_traces, n_samples)
        )
        if self.drift_sigma > 0:
            steps = rng.normal(
                0.0,
                self.drift_sigma * signal_std / np.sqrt(n_samples),
                size=(n_traces, n_samples),
            )
            noise += np.cumsum(steps, axis=1)
        return noise
