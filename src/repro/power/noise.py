"""Measurement-noise model for the synthetic oscilloscope.

The dominant noise in a shunt-resistor power measurement is wideband
amplifier/thermal noise, modelled as i.i.d. Gaussian samples.  A slow
baseline drift (random-walk low-frequency noise) is also available —
it is largely removed by the Pearson correlation's mean subtraction,
but including it keeps single traces realistic.

``sigma`` is expressed *relative to the standard deviation of the
deterministic waveform*, so the acquisition signal-to-noise ratio is a
single, interpretable calibration knob: the default of 1.0 (single-
trace SNR of one) puts the k = 50 averaged matching correlation near
0.98 and reproduces the paper's distinguisher behaviour; sigma = 1.8
lands the matching mean on the paper's 0.94 at the cost of a thinner
variance margin.

**Stream contract.**  :meth:`NoiseModel.sample` draws trace-major from
the generator's single bit stream, and each trace's draws depend only
on its own stream segment (the drift random walk runs *within* a
trace, never across traces).  Two consequences the acquisition layer
relies on:

* *chunk invariance* — sampling ``(a, l)`` then ``(b, l)`` from one
  generator equals one ``(a + b, l)`` call split at row ``a``, so
  :class:`~repro.acquisition.oscilloscope.Oscilloscope` can bound its
  working set without changing a single byte;
* *prefix stability* — the first ``n`` rows of a larger sample equal a
  direct ``n``-row sample from a same-seeded generator, which is what
  lets cached trace sets be reused by prefix across scenarios with
  different trace budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Additive noise applied to each acquired trace."""

    sigma: float = 1.0
    drift_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("noise sigma must be non-negative")
        if self.drift_sigma < 0:
            raise ValueError("drift sigma must be non-negative")

    def sample(
        self,
        n_traces: int,
        n_samples: int,
        signal_std: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Noise matrix of shape ``(n_traces, n_samples)``.

        ``signal_std`` scales the relative sigmas into absolute units.
        Draws are trace-major and per-trace independent — see the
        module docstring for the chunk/prefix stream contract.
        """
        if n_traces <= 0 or n_samples <= 0:
            raise ValueError("n_traces and n_samples must be positive")
        if signal_std < 0:
            raise ValueError("signal_std must be non-negative")
        if self.drift_sigma <= 0:
            return rng.normal(
                0.0, self.sigma * signal_std, size=(n_traces, n_samples)
            )
        # With drift enabled, each trace's white and drift draws must be
        # consecutive in the stream (trace-major), otherwise the drift
        # block's position would depend on n_traces and break the
        # chunk/prefix contract above.
        block = rng.standard_normal((n_traces, 2 * n_samples))
        noise = self.sigma * signal_std * block[:, :n_samples]
        steps = (
            self.drift_sigma * signal_std / np.sqrt(n_samples)
        ) * block[:, n_samples:]
        noise += np.cumsum(steps, axis=1)
        return noise
