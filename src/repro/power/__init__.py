"""Synthetic power chain: activity → weighted power → PDN-filtered
waveform, with measurement noise and CMOS process variation."""

from repro.power.models import (
    DEFAULT_KIND_WEIGHTS,
    PowerModel,
    cycle_power_breakdown,
    variance_share,
)
from repro.power.noise import NoiseModel
from repro.power.supply import WaveformConfig, render_waveform
from repro.power.variation import DeviceVariation, VariationModel

__all__ = [
    "PowerModel",
    "DEFAULT_KIND_WEIGHTS",
    "cycle_power_breakdown",
    "variance_share",
    "NoiseModel",
    "WaveformConfig",
    "render_waveform",
    "VariationModel",
    "DeviceVariation",
]
