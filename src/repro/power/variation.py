"""CMOS process variation between device instances.

The paper implements the same IP on different Cyclone III FPGAs and
reports that the verification is "insensitive to the CMOS variation
process".  Process variation changes transistor thresholds and wire
capacitances die-to-die, which the model captures as:

* a global gain on the whole trace (shunt/probe/die current scale),
* a global offset (static-power difference),
* small per-component multiplicative perturbations of the switched
  capacitance (local, within-die variation) — these slightly reshape
  the deterministic waveform, so even two "identical" devices do not
  correlate at exactly 1.0.

Pearson correlation is invariant to gain and offset; only the
per-component perturbation can degrade the verification, and the
experiments show it does not at realistic magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np


@dataclass(frozen=True)
class VariationModel:
    """Statistical model of die-to-die and within-die variation."""

    gain_sigma: float = 0.08
    offset_sigma: float = 0.3
    component_sigma: float = 0.025

    def __post_init__(self) -> None:
        if self.gain_sigma < 0 or self.offset_sigma < 0 or self.component_sigma < 0:
            raise ValueError("variation sigmas must be non-negative")

    def sample(
        self, component_names: Iterable[str], rng: np.random.Generator
    ) -> "DeviceVariation":
        """Draw one device's variation parameters."""
        gain = float(rng.normal(1.0, self.gain_sigma))
        gain = max(gain, 0.1)
        offset = float(rng.normal(0.0, self.offset_sigma))
        scales: Dict[str, float] = {}
        for name in component_names:
            scale = float(rng.normal(1.0, self.component_sigma))
            scales[name] = max(scale, 0.01)
        return DeviceVariation(gain=gain, offset=offset, component_scales=scales)


@dataclass(frozen=True)
class DeviceVariation:
    """One concrete device's deviation from the nominal power model."""

    gain: float = 1.0
    offset: float = 0.0
    component_scales: Dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.component_scales is None:
            object.__setattr__(self, "component_scales", {})
        if self.gain <= 0:
            raise ValueError("gain must be positive")

    @classmethod
    def nominal(cls) -> "DeviceVariation":
        """The no-variation device (used for ablations)."""
        return cls(gain=1.0, offset=0.0, component_scales={})
