"""Power-delivery-network (PDN) and waveform rendering.

On a real board the oscilloscope does not see per-cycle impulses: each
clock period's switching current is spread over several samples by the
die/package/board RC network.  The model renders each cycle as a
damped-exponential current pulse over ``samples_per_cycle`` samples and
then applies a single-pole low-pass filter for the PDN's memory across
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter


@dataclass(frozen=True)
class WaveformConfig:
    """Rendering parameters from per-cycle power to sampled waveform."""

    samples_per_cycle: int = 4
    pulse_decay: float = 0.55
    pdn_pole: float = 0.25

    def __post_init__(self) -> None:
        if self.samples_per_cycle <= 0:
            raise ValueError("samples_per_cycle must be positive")
        if not 0 < self.pulse_decay <= 1:
            raise ValueError("pulse_decay must be in (0, 1]")
        if not 0 <= self.pdn_pole < 1:
            raise ValueError("pdn_pole must be in [0, 1)")

    def pulse_kernel(self) -> np.ndarray:
        """Intra-cycle current pulse shape (peaks at the clock edge)."""
        exponents = np.arange(self.samples_per_cycle)
        kernel = self.pulse_decay ** exponents
        return kernel / kernel.sum()


def render_waveform(cycle_power: np.ndarray, config: WaveformConfig) -> np.ndarray:
    """Expand per-cycle power into a sampled, PDN-filtered waveform.

    The output has ``len(cycle_power) * samples_per_cycle`` samples.
    """
    cycle_power = np.asarray(cycle_power, dtype=float)
    if cycle_power.ndim != 1:
        raise ValueError("cycle_power must be 1-D")
    kernel = config.pulse_kernel()
    samples = np.outer(cycle_power, kernel).reshape(-1)
    if config.pdn_pole > 0:
        samples = lfilter(
            [1.0 - config.pdn_pole], [1.0, -config.pdn_pole], samples
        )
    return samples
