"""Measurement-fault injection.

Real benches misbehave: amplifiers clip, ADC samples drop out, the
trigger jitters.  These corruption models are applied to
:class:`~repro.acquisition.traces.TraceSet` objects so the test suite
and the robustness experiments can measure which faults the
verification shrugs off (clipping, dropout — mostly absorbed by
k-averaging and Pearson's offset invariance) and which are fatal
(desynchronisation — the scheme fundamentally requires aligned traces,
which is why the paper resets all FSMs before measuring).
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.bench import RngLike, make_rng
from repro.acquisition.traces import TraceSet


def clip_traces(traces: TraceSet, saturation_sigmas: float = 1.0) -> TraceSet:
    """Amplifier saturation: clamp samples beyond ±``saturation_sigmas``
    standard deviations of the global mean."""
    if saturation_sigmas <= 0:
        raise ValueError("saturation_sigmas must be positive")
    matrix = traces.matrix
    center = matrix.mean()
    spread = matrix.std()
    low = center - saturation_sigmas * spread
    high = center + saturation_sigmas * spread
    return TraceSet(traces.device_name, np.clip(matrix, low, high))


def drop_samples(
    traces: TraceSet, dropout_rate: float, rng: RngLike = None
) -> TraceSet:
    """Dead ADC samples: randomly replace a fraction with the trace mean.

    (Replacing with the mean models a sample-and-hold repair stage.)
    """
    if not 0 <= dropout_rate < 1:
        raise ValueError("dropout_rate must be in [0, 1)")
    generator = make_rng(rng)
    matrix = traces.matrix.copy()
    mask = generator.random(matrix.shape) < dropout_rate
    row_means = matrix.mean(axis=1, keepdims=True)
    matrix = np.where(mask, row_means, matrix)
    return TraceSet(traces.device_name, matrix)


def desynchronize(
    traces: TraceSet, max_shift: int, rng: RngLike = None
) -> TraceSet:
    """Trigger jitter: circularly shift each trace by a random offset
    in ``[-max_shift, +max_shift]`` samples."""
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if max_shift == 0:
        return TraceSet(traces.device_name, traces.matrix.copy())
    generator = make_rng(rng)
    shifted = np.empty_like(traces.matrix)
    shifts = generator.integers(-max_shift, max_shift + 1, size=traces.n_traces)
    for index, shift in enumerate(shifts):
        shifted[index] = np.roll(traces.matrix[index], int(shift))
    return TraceSet(traces.device_name, shifted)


def inject_spikes(
    traces: TraceSet,
    rate: float,
    amplitude_sigmas: float = 10.0,
    rng: RngLike = None,
) -> TraceSet:
    """EM interference: add rare large spikes to random samples."""
    if not 0 <= rate < 1:
        raise ValueError("rate must be in [0, 1)")
    if amplitude_sigmas <= 0:
        raise ValueError("amplitude_sigmas must be positive")
    generator = make_rng(rng)
    matrix = traces.matrix.copy()
    spread = matrix.std()
    mask = generator.random(matrix.shape) < rate
    signs = generator.choice((-1.0, 1.0), size=matrix.shape)
    matrix = matrix + mask * signs * amplitude_sigmas * spread
    return TraceSet(traces.device_name, matrix)


def gain_drift(traces: TraceSet, drift_fraction: float) -> TraceSet:
    """Slow thermal gain drift across the campaign: trace ``i`` is
    scaled by ``1 + drift_fraction * i / n``."""
    if drift_fraction < 0:
        raise ValueError("drift_fraction must be non-negative")
    n = traces.n_traces
    gains = 1.0 + drift_fraction * np.arange(n) / max(n - 1, 1)
    return TraceSet(traces.device_name, traces.matrix * gains[:, np.newaxis])
