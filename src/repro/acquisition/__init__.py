"""Acquisition layer: devices, oscilloscope, measurement campaigns."""

from repro.acquisition.alignment import align_traces, alignment_quality, estimate_shift
from repro.acquisition.bench import (
    MeasurementBench,
    acquire_traces,
    derive_acquisition_seed,
    make_rng,
)
from repro.acquisition.io import (
    load_campaign,
    load_trace_set,
    save_campaign,
    save_trace_set,
)
from repro.acquisition.device import Device, prime_fleet_activity
from repro.acquisition.faults import (
    clip_traces,
    desynchronize,
    drop_samples,
    gain_drift,
    inject_spikes,
)
from repro.acquisition.oscilloscope import ADCConfig, Oscilloscope
from repro.acquisition.traces import TraceSet

__all__ = [
    "Device",
    "prime_fleet_activity",
    "TraceSet",
    "Oscilloscope",
    "ADCConfig",
    "MeasurementBench",
    "acquire_traces",
    "derive_acquisition_seed",
    "make_rng",
    "save_trace_set",
    "load_trace_set",
    "save_campaign",
    "load_campaign",
    "clip_traces",
    "drop_samples",
    "desynchronize",
    "inject_spikes",
    "gain_drift",
    "align_traces",
    "alignment_quality",
    "estimate_shift",
]
