"""Trace realignment.

E12 shows trigger jitter is the one bench fault that destroys the
verification: Pearson correlation needs sample-aligned traces.  The
standard side-channel fix is cross-correlation realignment — shift
each trace so it best matches a reference pattern.  Because single
traces here have SNR around one, alignment works on the visible
periodic structure (the clock-rate pulse train survives any noise
level the verification itself could survive).

:func:`align_traces` estimates each trace's circular shift against a
reference (default: the mean of the set, iterated once so the
reference itself sharpens after the first pass).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.acquisition.traces import TraceSet


def estimate_shift(trace: np.ndarray, reference: np.ndarray, max_shift: int) -> int:
    """Circular shift of ``trace`` that best matches ``reference``.

    Uses FFT-based circular cross-correlation; only shifts within
    ``±max_shift`` are considered.  Returns the shift to *undo* (apply
    ``np.roll(trace, -shift)`` to realign).
    """
    if trace.shape != reference.shape:
        raise ValueError("trace and reference must have the same length")
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    n = trace.size
    if max_shift == 0 or n < 2:
        return 0
    a = trace - trace.mean()
    b = reference - reference.mean()
    spectrum = np.fft.rfft(a) * np.conj(np.fft.rfft(b))
    correlation = np.fft.irfft(spectrum, n=n)
    # correlation[s] = sum_t a[t] b[t - s] (circular): the peak index is
    # the shift a leads b by.
    window = min(max_shift, n // 2)
    candidates = np.concatenate([np.arange(0, window + 1), np.arange(n - window, n)])
    best = candidates[np.argmax(correlation[candidates])]
    return int(best if best <= n // 2 else best - n)


def align_traces(
    traces: TraceSet,
    reference: Optional[np.ndarray] = None,
    max_shift: int = 16,
    iterations: int = 2,
) -> Tuple[TraceSet, np.ndarray]:
    """Realign every trace by circular cross-correlation.

    Returns the aligned set and the per-trace shifts that were undone.
    With no explicit ``reference`` the set's own mean trace is used and
    the procedure iterates: after the first pass the mean sharpens, so
    a second pass refines the shifts.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    matrix = traces.matrix.copy()
    total_shifts = np.zeros(traces.n_traces, dtype=int)
    for iteration in range(iterations):
        target = reference if reference is not None else matrix.mean(axis=0)
        moved = 0
        for index in range(matrix.shape[0]):
            shift = estimate_shift(matrix[index], target, max_shift)
            if shift != 0:
                matrix[index] = np.roll(matrix[index], -shift)
                total_shifts[index] += shift
                moved += 1
        if moved == 0:
            break
    return TraceSet(traces.device_name, matrix), total_shifts


def alignment_quality(traces: TraceSet) -> float:
    """Mean pairwise-with-mean correlation — higher is better aligned.

    A cheap scalar to compare a trace set before and after alignment:
    the average Pearson correlation of each trace with the set mean.
    """
    mean_trace = traces.mean_trace()
    centered_mean = mean_trace - mean_trace.mean()
    mean_norm = float(np.sqrt(np.sum(centered_mean**2)))
    if mean_norm == 0:
        raise ValueError("mean trace has zero variance")
    rows = traces.matrix - traces.matrix.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.sum(rows**2, axis=1))
    if np.any(norms == 0):
        raise ValueError("a trace has zero variance")
    correlations = rows @ centered_mean / (norms * mean_norm)
    return float(correlations.mean())
