"""Trace containers.

A :class:`TraceSet` is the paper's ``T_device``: a set of ``n`` power
traces of equal length measured on one device.  It is stored as an
``(n, l)`` float matrix with the device name attached for reporting.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


class TraceSet:
    """An ordered set of equal-length power traces from one device.

    The matrix may be *read-only* (``writeable = False``): bench and
    artifact caches serve zero-copy frozen views, so consumers must
    not mutate ``matrix`` in place — derive new arrays instead (as
    :meth:`subset`, :mod:`repro.acquisition.faults` and
    :mod:`repro.acquisition.alignment` already do).
    """

    def __init__(self, device_name: str, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"trace matrix must be 2-D, got shape {matrix.shape}")
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ValueError("trace matrix must be non-empty")
        self.device_name = device_name
        self.matrix = matrix

    @property
    def n_traces(self) -> int:
        return self.matrix.shape[0]

    @property
    def trace_length(self) -> int:
        return self.matrix.shape[1]

    def __len__(self) -> int:
        return self.n_traces

    def __getitem__(self, index: int) -> np.ndarray:
        return self.matrix[index]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.matrix)

    def subset(self, indices: Sequence[int]) -> "TraceSet":
        """A new TraceSet containing the selected traces (copied)."""
        index_array = np.asarray(indices, dtype=int)
        if index_array.ndim != 1 or index_array.size == 0:
            raise ValueError("indices must be a non-empty 1-D sequence")
        if np.any(index_array < 0) or np.any(index_array >= self.n_traces):
            raise IndexError("trace index out of range")
        return TraceSet(self.device_name, self.matrix[index_array].copy())

    def mean_trace(self) -> np.ndarray:
        """Element-wise mean over all traces."""
        return self.matrix.mean(axis=0)

    def extend(self, other: "TraceSet") -> "TraceSet":
        """Concatenate two trace sets from the same device."""
        if other.trace_length != self.trace_length:
            raise ValueError(
                f"trace length mismatch: {self.trace_length} vs {other.trace_length}"
            )
        return TraceSet(
            self.device_name, np.vstack([self.matrix, other.matrix])
        )

    def __repr__(self) -> str:
        return (
            f"TraceSet({self.device_name!r}, n={self.n_traces}, "
            f"length={self.trace_length})"
        )
