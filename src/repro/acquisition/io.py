"""Trace-set and result persistence.

Real side-channel campaigns separate acquisition from analysis: the
bench writes traces to disk, the analyst loads them later.  TraceSets
round-trip through NumPy ``.npz`` archives with their device name and
a format version; a campaign directory additionally carries a
``campaign.json`` manifest (device inventory, shapes and free-form
metadata) that is validated on load, so campaigns are archivable and
shareable.

The module also provides *deterministic* array bundles
(:func:`save_array_bundle` / :func:`load_array_bundle`): npz-compatible
archives whose bytes depend only on their contents — zip timestamps are
pinned — so content-addressed stores (see :mod:`repro.sweeps.store`)
can compare results file-by-file across runs and machines.
"""

from __future__ import annotations

import io as _io
import json
import os
import zipfile
from typing import Any, Dict, Iterable, Mapping, Optional

import numpy as np

from repro.acquisition.traces import TraceSet

#: Format version written into every archive and manifest.
FORMAT_VERSION = 1

#: File name of the campaign manifest inside a campaign directory.
MANIFEST_NAME = "campaign.json"

#: Reserved entry name carrying the JSON metadata of an array bundle.
_BUNDLE_METADATA_KEY = "__bundle_metadata__"


def save_trace_set(traces: TraceSet, path: str) -> None:
    """Write one trace set to an ``.npz`` archive."""
    np.savez_compressed(
        path,
        matrix=traces.matrix,
        device_name=np.array(traces.device_name),
        format_version=np.array(FORMAT_VERSION),
    )


def load_trace_set(path: str) -> TraceSet:
    """Load a trace set written by :func:`save_trace_set`."""
    with np.load(path, allow_pickle=False) as archive:
        if "matrix" not in archive or "device_name" not in archive:
            raise ValueError(f"{path} is not a trace-set archive")
        version = int(archive["format_version"]) if "format_version" in archive else 0
        if version > FORMAT_VERSION:
            raise ValueError(
                f"{path} was written by a newer format (version {version})"
            )
        return TraceSet(str(archive["device_name"]), archive["matrix"])


def save_campaign(
    trace_sets: Dict[str, TraceSet],
    directory: str,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, str]:
    """Write several trace sets plus a manifest; returns name -> path.

    ``metadata`` is any JSON-serialisable mapping (acquisition
    settings, operator notes, …); it round-trips through
    :func:`load_campaign_metadata`.
    """
    os.makedirs(directory, exist_ok=True)
    by_device: Dict[str, str] = {}
    for name, traces in trace_sets.items():
        if traces.device_name in by_device:
            raise ValueError(
                f"entries {by_device[traces.device_name]!r} and {name!r} both "
                f"hold traces of device {traces.device_name!r}; a campaign "
                "stores one trace set per device"
            )
        by_device[traces.device_name] = name
    paths: Dict[str, str] = {}
    devices: Dict[str, Dict[str, Any]] = {}
    for name, traces in trace_sets.items():
        safe = name.replace("#", "_").replace("/", "_")
        filename = f"{safe}.npz"
        path = os.path.join(directory, filename)
        save_trace_set(traces, path)
        paths[name] = path
        # Key the manifest on the archive-internal device name — that
        # is what load_campaign keys its result on, regardless of the
        # (possibly aliased) dict key used at save time.
        devices[traces.device_name] = {
            "file": filename,
            "n_traces": int(traces.n_traces),
            "trace_length": int(traces.trace_length),
        }
    manifest = {
        "format_version": FORMAT_VERSION,
        "devices": devices,
        "metadata": dict(metadata) if metadata is not None else {},
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return paths


def _load_manifest(directory: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        manifest = json.load(handle)
    if not isinstance(manifest, dict) or "devices" not in manifest:
        raise ValueError(f"{path} is not a campaign manifest")
    version = int(manifest.get("format_version", 0))
    if version > FORMAT_VERSION:
        raise ValueError(
            f"{path} was written by a newer format (version {version})"
        )
    return manifest


def load_campaign_metadata(directory: str) -> Dict[str, Any]:
    """The free-form metadata saved with a campaign (empty when none)."""
    manifest = _load_manifest(directory)
    if manifest is None:
        return {}
    return dict(manifest.get("metadata", {}))


def load_campaign(
    directory: str, names: Optional[Iterable[str]] = None
) -> Dict[str, TraceSet]:
    """Load every ``.npz`` trace set in a directory, keyed by device name.

    When the directory carries a manifest (written by
    :func:`save_campaign`), the loaded sets are validated against it:
    every declared device must be present with its declared shape, so a
    truncated or hand-edited campaign fails loudly here rather than
    deep inside the correlation process.
    """
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no such campaign directory: {directory}")
    loaded: Dict[str, TraceSet] = {}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".npz"):
            continue
        traces = load_trace_set(os.path.join(directory, entry))
        loaded[traces.device_name] = traces
    manifest = _load_manifest(directory)
    if manifest is not None:
        for name, info in manifest["devices"].items():
            if name not in loaded:
                raise ValueError(
                    f"campaign manifest declares device {name!r} but "
                    f"{info.get('file')} is missing or unreadable"
                )
            traces = loaded[name]
            declared = (int(info["n_traces"]), int(info["trace_length"]))
            actual = (traces.n_traces, traces.trace_length)
            if declared != actual:
                raise ValueError(
                    f"device {name!r}: manifest declares shape {declared}, "
                    f"archive holds {actual}"
                )
    if names is not None:
        wanted = list(names)
        missing = set(wanted) - set(loaded)
        if missing:
            raise KeyError(f"campaign is missing devices: {sorted(missing)}")
        return {name: loaded[name] for name in wanted}
    return loaded


def save_array_bundle(
    path: str,
    arrays: Mapping[str, np.ndarray],
    metadata: Optional[Mapping[str, Any]] = None,
) -> None:
    """Write named arrays to an npz-compatible archive, deterministically.

    Unlike ``np.savez``, the output bytes depend only on the array
    contents: entries are written in sorted name order with a fixed zip
    timestamp.  ``metadata`` (JSON-serialisable) is stored as an extra
    entry and returned by :func:`load_array_bundle`.
    """
    payload: Dict[str, np.ndarray] = {
        name: np.asanyarray(value) for name, value in arrays.items()
    }
    if _BUNDLE_METADATA_KEY in payload:
        raise ValueError(f"array name {_BUNDLE_METADATA_KEY!r} is reserved")
    meta_json = json.dumps(
        dict(metadata) if metadata is not None else {},
        sort_keys=True,
        separators=(",", ":"),
    )
    payload[_BUNDLE_METADATA_KEY] = np.array(meta_json)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        for name in sorted(payload):
            buffer = _io.BytesIO()
            np.lib.format.write_array(buffer, payload[name], allow_pickle=False)
            info = zipfile.ZipInfo(f"{name}.npy", date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_DEFLATED
            archive.writestr(info, buffer.getvalue())


def load_array_bundle(path: str) -> "tuple[Dict[str, np.ndarray], Dict[str, Any]]":
    """Load ``(arrays, metadata)`` written by :func:`save_array_bundle`."""
    arrays: Dict[str, np.ndarray] = {}
    metadata: Dict[str, Any] = {}
    with np.load(path, allow_pickle=False) as archive:
        for name in archive.files:
            if name == _BUNDLE_METADATA_KEY:
                metadata = json.loads(str(archive[name]))
            else:
                arrays[name] = archive[name]
    return arrays, metadata


__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "save_trace_set",
    "load_trace_set",
    "save_campaign",
    "load_campaign",
    "load_campaign_metadata",
    "save_array_bundle",
    "load_array_bundle",
]
