"""Trace-set persistence.

Real side-channel campaigns separate acquisition from analysis: the
bench writes traces to disk, the analyst loads them later.  TraceSets
round-trip through NumPy ``.npz`` archives with their device name and
a format version, so campaigns are archivable and shareable.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable

import numpy as np

from repro.acquisition.traces import TraceSet

#: Format version written into every archive.
FORMAT_VERSION = 1


def save_trace_set(traces: TraceSet, path: str) -> None:
    """Write one trace set to an ``.npz`` archive."""
    np.savez_compressed(
        path,
        matrix=traces.matrix,
        device_name=np.array(traces.device_name),
        format_version=np.array(FORMAT_VERSION),
    )


def load_trace_set(path: str) -> TraceSet:
    """Load a trace set written by :func:`save_trace_set`."""
    with np.load(path, allow_pickle=False) as archive:
        if "matrix" not in archive or "device_name" not in archive:
            raise ValueError(f"{path} is not a trace-set archive")
        version = int(archive["format_version"]) if "format_version" in archive else 0
        if version > FORMAT_VERSION:
            raise ValueError(
                f"{path} was written by a newer format (version {version})"
            )
        return TraceSet(str(archive["device_name"]), archive["matrix"])


def save_campaign(trace_sets: Dict[str, TraceSet], directory: str) -> Dict[str, str]:
    """Write several trace sets into a directory; returns name -> path."""
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}
    for name, traces in trace_sets.items():
        safe = name.replace("#", "_").replace("/", "_")
        path = os.path.join(directory, f"{safe}.npz")
        save_trace_set(traces, path)
        paths[name] = path
    return paths


def load_campaign(directory: str, names: Iterable[str] = None) -> Dict[str, TraceSet]:
    """Load every ``.npz`` trace set in a directory, keyed by device name."""
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no such campaign directory: {directory}")
    loaded: Dict[str, TraceSet] = {}
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".npz"):
            continue
        traces = load_trace_set(os.path.join(directory, entry))
        loaded[traces.device_name] = traces
    if names is not None:
        missing = set(names) - set(loaded)
        if missing:
            raise KeyError(f"campaign is missing devices: {sorted(missing)}")
        return {name: loaded[name] for name in names}
    return loaded
