"""The synthetic oscilloscope.

Adds what the measurement chain adds on a real bench: wideband noise
(see :mod:`repro.power.noise`) and ADC quantisation at a configurable
vertical resolution.  Acquisition is triggered at reset, so every trace
is aligned — the paper guarantees this by placing all FSMs "in the
exact same state before starting any power consumption measurements".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.acquisition.device import Device
from repro.acquisition.traces import TraceSet
from repro.power.noise import NoiseModel


@dataclass(frozen=True)
class ADCConfig:
    """Vertical quantisation of the oscilloscope front-end."""

    bits: int = 10
    headroom: float = 4.0

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 24:
            raise ValueError(f"ADC bits must be in [1, 24], got {self.bits}")
        if self.headroom < 0:
            raise ValueError("ADC headroom must be non-negative")


class Oscilloscope:
    """Noise + quantisation applied on top of a device's waveform."""

    def __init__(
        self,
        noise: Optional[NoiseModel] = None,
        adc: Optional[ADCConfig] = None,
    ):
        self.noise = noise if noise is not None else NoiseModel()
        self.adc = adc

    def _quantize(self, traces: np.ndarray, signal_std: float) -> np.ndarray:
        """Round traces onto the ADC grid covering signal ± headroom."""
        if self.adc is None:
            return traces
        center = float(np.mean(traces))
        spread = (self.noise.sigma + self.adc.headroom) * signal_std
        if spread == 0:
            return traces
        low = center - spread
        high = center + spread
        levels = (1 << self.adc.bits) - 1
        step = (high - low) / levels
        clipped = np.clip(traces, low, high)
        return low + np.round((clipped - low) / step) * step

    def acquire(
        self,
        device: Device,
        n_traces: int,
        rng: np.random.Generator,
        n_cycles: Optional[int] = None,
    ) -> TraceSet:
        """Measure ``n_traces`` aligned traces on ``device``.

        This is the paper's acquisition function ``Pw(device, n)``.
        """
        if n_traces <= 0:
            raise ValueError(f"n_traces must be positive, got {n_traces}")
        base = device.deterministic_waveform(n_cycles)
        signal_std = float(np.std(base))
        if signal_std == 0:
            # A constant waveform still gets absolute-unit noise so the
            # correlation machinery downstream sees finite variance.
            signal_std = 1.0
        noise = self.noise.sample(n_traces, base.size, signal_std, rng)
        traces = base[np.newaxis, :] + noise
        traces = self._quantize(traces, signal_std)
        return TraceSet(device.name, traces)
