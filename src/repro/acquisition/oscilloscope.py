"""The synthetic oscilloscope.

Adds what the measurement chain adds on a real bench: wideband noise
(see :mod:`repro.power.noise`) and ADC quantisation at a configurable
vertical resolution.  Acquisition is triggered at reset, so every trace
is aligned — the paper guarantees this by placing all FSMs "in the
exact same state before starting any power consumption measurements".

Acquisition is *chunked*: the noise matrix is generated and quantised
in row blocks bounded by ``max_chunk_bytes``, so the transient working
set of a 10 000-trace campaign stays constant instead of scaling with
``n_traces``.  Chunking is exact, not approximate — NumPy generators
fill arrays sequentially from one bit stream, so any chunk split
produces byte-identical traces (see :class:`~repro.power.noise.NoiseModel`
for the stream contract).  The ADC window is likewise derived from the
device's *deterministic* base waveform, never from the noisy batch, so
the quantisation grid is invariant to both chunk size and trace count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.acquisition.device import Device
from repro.acquisition.traces import TraceSet
from repro.power.noise import NoiseModel

#: Default transient budget for one noise/quantisation block (bytes).
#: Bounds the *working set* of an acquisition step — noise draws,
#: drift draws and quantisation temporaries together — not the
#: returned trace matrix.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ADCConfig:
    """Vertical quantisation of the oscilloscope front-end."""

    bits: int = 10
    headroom: float = 4.0

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 24:
            raise ValueError(f"ADC bits must be in [1, 24], got {self.bits}")
        if self.headroom < 0:
            raise ValueError("ADC headroom must be non-negative")


class Oscilloscope:
    """Noise + quantisation applied on top of a device's waveform.

    ``max_chunk_bytes`` bounds the transient trace-matrix block built
    per acquisition step; it never changes the acquired values, only
    peak memory.
    """

    def __init__(
        self,
        noise: Optional[NoiseModel] = None,
        adc: Optional[ADCConfig] = None,
        max_chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ):
        if max_chunk_bytes <= 0:
            raise ValueError("max_chunk_bytes must be positive")
        self.noise = noise if noise is not None else NoiseModel()
        self.adc = adc
        self.max_chunk_bytes = max_chunk_bytes

    def _quantize(
        self, traces: np.ndarray, base: np.ndarray, signal_std: float
    ) -> np.ndarray:
        """Round traces onto the ADC grid covering the signal ± headroom.

        The window center comes from the *deterministic* base waveform,
        so two acquisitions of any chunk size or trace count land on
        the same grid.
        """
        if self.adc is None:
            return traces
        center = float(np.mean(base))
        spread = (self.noise.sigma + self.adc.headroom) * signal_std
        if spread == 0:
            return traces
        low = center - spread
        high = center + spread
        levels = (1 << self.adc.bits) - 1
        step = (high - low) / levels
        clipped = np.clip(traces, low, high)
        return low + np.round((clipped - low) / step) * step

    def rows_per_chunk(self, n_samples: int) -> int:
        """How many traces fit one ``max_chunk_bytes`` working block.

        A chunk's transient footprint is several row-matrices, not one:
        the noise block (twice as wide when drift is enabled) plus the
        quantisation temporaries.  Budgeting four 8-byte matrices per
        row keeps the *actual* peak near ``max_chunk_bytes``.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        return max(1, int(self.max_chunk_bytes // (4 * 8 * n_samples)))

    def acquire(
        self,
        device: Device,
        n_traces: int,
        rng: np.random.Generator,
        n_cycles: Optional[int] = None,
    ) -> TraceSet:
        """Measure ``n_traces`` aligned traces on ``device``.

        This is the paper's acquisition function ``Pw(device, n)``.
        The result is independent of ``max_chunk_bytes``: chunk k of
        the noise stream holds exactly the draws the one-shot matrix
        would place in those rows.
        """
        if n_traces <= 0:
            raise ValueError(f"n_traces must be positive, got {n_traces}")
        base = device.deterministic_waveform(n_cycles)
        signal_std = float(np.std(base))
        if signal_std == 0:
            # A constant waveform still gets absolute-unit noise so the
            # correlation machinery downstream sees finite variance.
            signal_std = 1.0
        rows = self.rows_per_chunk(base.size)
        if rows >= n_traces:
            noise = self.noise.sample(n_traces, base.size, signal_std, rng)
            noise += base[np.newaxis, :]
            return TraceSet(device.name, self._quantize(noise, base, signal_std))
        traces = np.empty((n_traces, base.size), dtype=float)
        for start in range(0, n_traces, rows):
            stop = min(start + rows, n_traces)
            chunk = self.noise.sample(stop - start, base.size, signal_std, rng)
            chunk += base[np.newaxis, :]
            traces[start:stop] = self._quantize(chunk, base, signal_std)
        return TraceSet(device.name, traces)
