"""Physical device instances.

A :class:`Device` is one chip: a watermarked IP netlist plus that die's
process-variation draw and the nominal power model.  Because the
paper's designs are input-independent and start from reset, a device's
noise-free power waveform is deterministic; it is simulated once and
cached, and each "measurement" adds fresh noise in the oscilloscope.
This mirrors physics (the die does the same thing every run) and makes
10 000-trace campaigns cheap.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.fsm.watermark import WatermarkedIP
from repro.hdl.activity import ActivityTrace
from repro.hdl.simulator import Simulator
from repro.power.models import PowerModel
from repro.power.supply import WaveformConfig, render_waveform
from repro.power.variation import DeviceVariation


class Device:
    """One manufactured instance of a watermarked IP."""

    def __init__(
        self,
        name: str,
        ip: WatermarkedIP,
        power_model: PowerModel,
        variation: Optional[DeviceVariation] = None,
        waveform: Optional[WaveformConfig] = None,
        default_cycles: int = 256,
    ):
        if default_cycles <= 0:
            raise ValueError("default_cycles must be positive")
        self.name = name
        self.ip = ip
        self.nominal_model = power_model
        self.variation = variation if variation is not None else DeviceVariation.nominal()
        self.waveform = waveform if waveform is not None else WaveformConfig()
        self.default_cycles = default_cycles
        self._activity_cache: Dict[int, ActivityTrace] = {}
        self._waveform_cache: Dict[int, np.ndarray] = {}

    @property
    def effective_model(self) -> PowerModel:
        """The nominal power model perturbed by this die's variation."""
        if not self.variation.component_scales:
            return self.nominal_model
        return self.nominal_model.with_component_scales(
            self.variation.component_scales
        )

    def activity(self, n_cycles: Optional[int] = None) -> ActivityTrace:
        """Cycle-accurate switching activity over ``n_cycles`` (cached)."""
        cycles = self.default_cycles if n_cycles is None else n_cycles
        if cycles not in self._activity_cache:
            simulator = Simulator(self.ip.netlist)
            self._activity_cache[cycles] = simulator.run(cycles)
        return self._activity_cache[cycles]

    def deterministic_waveform(self, n_cycles: Optional[int] = None) -> np.ndarray:
        """The noise-free sampled power waveform of this die (cached)."""
        cycles = self.default_cycles if n_cycles is None else n_cycles
        if cycles not in self._waveform_cache:
            cycle_power = self.effective_model.cycle_power(self.activity(cycles))
            samples = render_waveform(cycle_power, self.waveform)
            samples = self.variation.gain * samples + self.variation.offset
            self._waveform_cache[cycles] = samples
        return self._waveform_cache[cycles]

    def trace_length(self, n_cycles: Optional[int] = None) -> int:
        """Number of samples per trace for a given measurement length."""
        cycles = self.default_cycles if n_cycles is None else n_cycles
        return cycles * self.waveform.samples_per_cycle

    def __repr__(self) -> str:
        return f"Device({self.name!r}, ip={self.ip.name!r})"
