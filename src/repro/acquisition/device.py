"""Physical device instances.

A :class:`Device` is one chip: a watermarked IP netlist plus that die's
process-variation draw and the nominal power model.  Because the
paper's designs are input-independent and start from reset, a device's
noise-free power waveform is deterministic; it is simulated once and
cached, and each "measurement" adds fresh noise in the oscilloscope.
This mirrors physics (the die does the same thing every run) and makes
10 000-trace campaigns cheap.

Caching happens at two levels:

* **Per device** — activity and rendered waveforms are cached per
  resolved cycle count (``n_cycles=None`` and an explicit
  ``n_cycles == default_cycles`` share one entry).
* **Per fleet** — devices manufactured from the same
  :class:`~repro.fsm.watermark.WatermarkedIP` differ only in power
  weights, gain and offset, never in switching activity.  The compiled
  engine's structural fingerprint (see :mod:`repro.hdl.engine`)
  identifies structurally identical netlists, and a process-wide
  activity cache keyed on it makes an N-device campaign simulate each
  *distinct* netlist exactly once.  Shared
  :class:`~repro.hdl.activity.ActivityTrace` objects are treated as
  immutable by every consumer in this package.

:func:`prime_fleet_activity` is the batched front door to that cache:
instead of letting each device lazily simulate its own netlist, it
dedupes a whole fleet down to its distinct ``(structure, cycles)``
entries and fills them through
:func:`~repro.hdl.simulator.simulate_batch`, which executes every
group of shape-compatible netlists in **one** vectorised engine run.
Batched execution is byte-identical to the per-device compiled path
(the engine's core invariant), so priming never changes what any
device observes — only how fast the cache fills.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.fsm.watermark import WatermarkedIP
from repro.hdl.activity import ActivityTrace
from repro.hdl.simulator import Simulator, simulate_batch
from repro.power.models import PowerModel
from repro.power.supply import WaveformConfig, render_waveform
from repro.power.variation import DeviceVariation

#: Process-wide structural activity cache:
#: ``(structural_key, cycles) -> ActivityTrace``, bounded LRU.
_FLEET_ACTIVITY_CACHE: "OrderedDict[Tuple[str, int], ActivityTrace]" = OrderedDict()

#: Upper bound on distinct (netlist structure, cycle count) entries.
FLEET_ACTIVITY_CACHE_MAX = 64


def clear_fleet_activity_cache() -> None:
    """Drop every structurally shared activity trace (mainly for tests)."""
    _FLEET_ACTIVITY_CACHE.clear()


def fleet_activity_cache_size() -> int:
    """Number of distinct (structure, cycles) entries currently shared."""
    return len(_FLEET_ACTIVITY_CACHE)


def _install_fleet_trace(
    fleet_key: Tuple[str, int], followers: List["Device"], trace: ActivityTrace
) -> None:
    """Share one simulated trace: process-wide cache + follower devices."""
    _FLEET_ACTIVITY_CACHE[fleet_key] = trace
    _FLEET_ACTIVITY_CACHE.move_to_end(fleet_key)
    for device in followers:
        device._activity_cache[fleet_key[1]] = trace
    while len(_FLEET_ACTIVITY_CACHE) > FLEET_ACTIVITY_CACHE_MAX:
        _FLEET_ACTIVITY_CACHE.popitem(last=False)


def prime_fleet_activity(
    devices: Iterable["Device"],
    n_cycles: Optional[int] = None,
    pool=None,
) -> int:
    """Fill the activity caches for a whole fleet with batched runs.

    Groups ``devices`` by distinct ``(structural fingerprint, resolved
    cycle count)``, skips everything already cached (per device or
    process-wide), and simulates the remaining distinct netlists
    through :func:`~repro.hdl.simulator.simulate_batch` — one
    vectorised engine execution per netlist *shape*, with per-lane
    cycle counts, instead of one scalar run per structure.  Devices
    whose netlists cannot be fingerprinted (interpreted engines, input
    ports) are simulated individually, exactly as the lazy
    :meth:`Device.activity` path would.

    With a :class:`~repro.hdl.batch_pool.BatchPool` as ``pool`` the
    distinct entries are *submitted* instead of simulated: the pool
    defers execution so lanes from many fleets — different campaigns,
    different sweep scenarios — flush together in shared shape-grouped
    batches, and each resolved trace installs itself into the caches
    through a future callback.  Deferred entries resolve at the next
    pool flush (or budget auto-flush); until then the devices simply
    fall back to lazy scalar simulation, so deferral is never a
    correctness concern.  Submissions dedupe on the fleet key, so two
    campaigns priming the same structure before a flush share one lane.

    Returns the number of distinct shareable entries that were
    simulated (or submitted).  After priming (and, when pooled, after
    the flush), every device's :meth:`Device.activity` for the
    requested length is a cache hit, and the cached bytes are identical
    to what lazy per-device simulation would have produced — the
    engine's batching invariant.
    """
    pending: "OrderedDict[Tuple[str, int], Simulator]" = OrderedDict()
    followers: Dict[Tuple[str, int], List[Device]] = {}
    for device in devices:
        cycles = device.resolve_cycles(n_cycles)
        if cycles in device._activity_cache:
            continue
        simulator = Simulator(device.ip.netlist, engine=device.engine)
        key = simulator.structural_key
        if key is None:
            device._activity_cache[cycles] = simulator.run(cycles)
            continue
        fleet_key = (key, cycles)
        cached = _FLEET_ACTIVITY_CACHE.get(fleet_key)
        if cached is not None:
            _FLEET_ACTIVITY_CACHE.move_to_end(fleet_key)
            device._activity_cache[cycles] = cached
            continue
        if fleet_key in pending:
            followers[fleet_key].append(device)
        else:
            pending[fleet_key] = simulator
            followers[fleet_key] = [device]
    if not pending:
        return 0
    if pool is not None:
        for fleet_key, simulator in pending.items():
            future = pool.submit(
                simulator, fleet_key[1], key=("fleet-activity", *fleet_key)
            )

            def install(
                trace: ActivityTrace,
                fleet_key: Tuple[str, int] = fleet_key,
                members: List[Device] = followers[fleet_key],
            ) -> None:
                _install_fleet_trace(fleet_key, members, trace)

            future.add_done_callback(install)
        return len(pending)
    traces = simulate_batch(
        list(pending.values()),
        [cycles for _key, cycles in pending],
    )
    for fleet_key, trace in zip(pending, traces):
        _install_fleet_trace(fleet_key, followers[fleet_key], trace)
    return len(pending)


class Device:
    """One manufactured instance of a watermarked IP."""

    def __init__(
        self,
        name: str,
        ip: WatermarkedIP,
        power_model: PowerModel,
        variation: Optional[DeviceVariation] = None,
        waveform: Optional[WaveformConfig] = None,
        default_cycles: int = 256,
        engine: str = "auto",
    ):
        if default_cycles <= 0:
            raise ValueError("default_cycles must be positive")
        self.name = name
        self.ip = ip
        self.nominal_model = power_model
        self.variation = (
            variation if variation is not None else DeviceVariation.nominal()
        )
        self.waveform = waveform if waveform is not None else WaveformConfig()
        self.default_cycles = default_cycles
        self.engine = engine
        self._activity_cache: Dict[int, ActivityTrace] = {}
        self._waveform_cache: Dict[int, np.ndarray] = {}

    @property
    def effective_model(self) -> PowerModel:
        """The nominal power model perturbed by this die's variation."""
        if not self.variation.component_scales:
            return self.nominal_model
        return self.nominal_model.with_component_scales(
            self.variation.component_scales
        )

    def resolve_cycles(self, n_cycles: Optional[int] = None) -> int:
        """Normalise a measurement length: ``None`` means the default.

        Every cache in the acquisition chain keys on the *resolved*
        count, so ``None`` and an explicit ``default_cycles`` share one
        entry instead of simulating (and storing) everything twice.
        """
        return self.default_cycles if n_cycles is None else n_cycles

    def activity(self, n_cycles: Optional[int] = None) -> ActivityTrace:
        """Cycle-accurate switching activity over ``n_cycles`` (cached).

        Consults the per-device cache first, then the process-wide
        structural cache shared by every device built from the same IP
        structure; only on a double miss is the netlist simulated.
        """
        cycles = self.resolve_cycles(n_cycles)
        trace = self._activity_cache.get(cycles)
        if trace is not None:
            return trace
        simulator = Simulator(self.ip.netlist, engine=self.engine)
        fleet_key = None
        if simulator.structural_key is not None:
            fleet_key = (simulator.structural_key, cycles)
            trace = _FLEET_ACTIVITY_CACHE.get(fleet_key)
            if trace is not None:
                _FLEET_ACTIVITY_CACHE.move_to_end(fleet_key)
        if trace is None:
            trace = simulator.run(cycles)
            if fleet_key is not None:
                _FLEET_ACTIVITY_CACHE[fleet_key] = trace
                while len(_FLEET_ACTIVITY_CACHE) > FLEET_ACTIVITY_CACHE_MAX:
                    _FLEET_ACTIVITY_CACHE.popitem(last=False)
        self._activity_cache[cycles] = trace
        return trace

    def deterministic_waveform(self, n_cycles: Optional[int] = None) -> np.ndarray:
        """The noise-free sampled power waveform of this die (cached).

        The cached array is frozen (``writeable = False``): devices are
        shared across campaigns and scenarios by the artifact cache
        (:mod:`repro.experiments.artifacts`), so the rendered waveform
        must behave as an immutable value.
        """
        cycles = self.resolve_cycles(n_cycles)
        if cycles not in self._waveform_cache:
            cycle_power = self.effective_model.cycle_power(self.activity(cycles))
            samples = render_waveform(cycle_power, self.waveform)
            samples = self.variation.gain * samples + self.variation.offset
            samples.flags.writeable = False
            self._waveform_cache[cycles] = samples
        return self._waveform_cache[cycles]

    def trace_length(self, n_cycles: Optional[int] = None) -> int:
        """Number of samples per trace for a given measurement length."""
        return self.resolve_cycles(n_cycles) * self.waveform.samples_per_cycle

    def __repr__(self) -> str:
        return f"Device({self.name!r}, ip={self.ip.name!r})"
