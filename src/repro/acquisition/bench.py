"""Measurement campaigns: the paper's ``Pw(device, n)`` step.

:func:`acquire_traces` is the library-level entry point for power
acquisition; :class:`MeasurementBench` bundles an oscilloscope and a
randomness policy so a whole experiment shares one reproducible
measurement chain.

A bench has two seeding modes:

* **Sequential** (``seed=...``) — one RNG stream consumed in
  acquisition order, as on a real bench where measurement order
  matters.  Two benches with the same seed reproduce each other only
  if they measure the same devices in the same order.
* **Keyed** (``key=...``) — every ``(device, cycle-count)`` pair gets
  its own generator seeded from
  :func:`derive_acquisition_seed`, so acquiring DUT#3 alone yields
  byte-identical traces to acquiring it inside a full campaign.  This
  is what makes trace sets *sharing-safe*: the artifact cache
  (:mod:`repro.experiments.artifacts`) can reuse one acquisition
  across scenarios because its bytes do not depend on what else was
  measured.  Keyed acquisition is also *prefix-stable*: the first
  ``n`` traces of a large acquisition equal a direct ``n``-trace
  acquisition (see :class:`~repro.power.noise.NoiseModel`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Union

import numpy as np

from repro.acquisition.device import Device, prime_fleet_activity
from repro.acquisition.oscilloscope import Oscilloscope
from repro.acquisition.traces import TraceSet

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike) -> np.random.Generator:
    """Normalise a seed / generator / None into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_acquisition_seed(key: str, device_name: str, n_cycles: int) -> int:
    """Per-device acquisition seed from a bench key.

    ``key`` is an opaque string identifying the measurement context
    (the artifact layer uses the measurement base key of the campaign
    config); the device name and resolved cycle count are mixed in so
    every (device, measurement-length) pair draws an independent,
    order-free noise stream.
    """
    digest = hashlib.sha256(
        f"acquisition:{key}|{device_name}|{n_cycles}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def acquire_traces(
    device: Device,
    n_traces: int,
    oscilloscope: Optional[Oscilloscope] = None,
    rng: RngLike = None,
    n_cycles: Optional[int] = None,
) -> TraceSet:
    """The paper's ``T_device = Pw(device, n)``."""
    scope = oscilloscope if oscilloscope is not None else Oscilloscope()
    return scope.acquire(device, n_traces, make_rng(rng), n_cycles)


class MeasurementBench:
    """One measurement setup shared across a whole experiment.

    Holds the oscilloscope and the seeding policy (see the module
    docstring) so campaigns are exactly reproducible, and caches
    acquired trace sets per device.  Cached matrices are frozen
    (``writeable = False``) and served as zero-copy views — consumers
    must treat trace sets as immutable, which everything in
    :mod:`repro.core` already does.
    """

    def __init__(
        self,
        oscilloscope: Optional[Oscilloscope] = None,
        seed: RngLike = None,
        key: Optional[str] = None,
    ):
        self.oscilloscope = oscilloscope if oscilloscope is not None else Oscilloscope()
        self.rng = make_rng(seed)
        self.key = key
        self._cache: Dict[str, TraceSet] = {}

    def device_rng(
        self, device: Device, n_cycles: Optional[int] = None
    ) -> np.random.Generator:
        """The keyed per-device generator (requires ``key`` mode)."""
        if self.key is None:
            raise ValueError("device_rng needs a keyed bench (key=...)")
        cycles = device.resolve_cycles(n_cycles)
        return np.random.default_rng(
            derive_acquisition_seed(self.key, device.name, cycles)
        )

    def measure(
        self,
        device: Device,
        n_traces: int,
        n_cycles: Optional[int] = None,
        cache: bool = True,
    ) -> TraceSet:
        """Acquire (or reuse) ``n_traces`` traces for ``device``.

        The cache keys on the *resolved* cycle count so that
        ``n_cycles=None`` and an explicit ``n_cycles=default_cycles``
        hit the same entry instead of acquiring twice.  Hits are served
        as read-only prefix views of the cached matrix — no per-hit
        copy of multi-MB trace matrices.
        """
        cache_key = f"{device.name}:{device.resolve_cycles(n_cycles)}"
        if cache and cache_key in self._cache:
            cached = self._cache[cache_key]
            if cached.n_traces >= n_traces:
                if cached.n_traces == n_traces:
                    return cached
                return TraceSet(cached.device_name, cached.matrix[:n_traces])
        rng = (
            self.device_rng(device, n_cycles)
            if self.key is not None
            else self.rng
        )
        traces = self.oscilloscope.acquire(device, n_traces, rng, n_cycles)
        if cache:
            traces.matrix.flags.writeable = False
            self._cache[cache_key] = traces
        return traces

    def measure_all(
        self,
        devices: Iterable[Device],
        n_traces: int,
        n_cycles: Optional[int] = None,
        pool=None,
    ) -> Dict[str, TraceSet]:
        """Acquire the same number of traces on several devices.

        The fleet's switching activity is primed first
        (:func:`~repro.acquisition.device.prime_fleet_activity`): all
        devices sharing a netlist shape simulate in one batched engine
        execution instead of one scalar run each.  ``pool`` optionally
        routes that priming through a shared
        :class:`~repro.hdl.batch_pool.BatchPool`, so lanes other
        callers already submitted batch together with this fleet's;
        the pool is flushed before acquisition starts, but only when
        this fleet's priming left lanes unresolved — an already-primed
        fleet measures immediately without draining other callers'
        pending lanes.  Acquired bytes are unchanged either way —
        batching only fills the activity caches faster.
        """
        devices = list(devices)
        submitted = prime_fleet_activity(devices, n_cycles, pool=pool)
        if pool is not None and submitted:
            pool.flush()
        return {
            device.name: self.measure(device, n_traces, n_cycles)
            for device in devices
        }

    def clear_cache(self) -> None:
        self._cache.clear()
