"""Measurement campaigns: the paper's ``Pw(device, n)`` step.

:func:`acquire_traces` is the library-level entry point for power
acquisition; :class:`MeasurementBench` bundles an oscilloscope and an
RNG so a whole experiment shares one reproducible measurement chain.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

import numpy as np

from repro.acquisition.device import Device
from repro.acquisition.oscilloscope import Oscilloscope
from repro.acquisition.traces import TraceSet

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike) -> np.random.Generator:
    """Normalise a seed / generator / None into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def acquire_traces(
    device: Device,
    n_traces: int,
    oscilloscope: Optional[Oscilloscope] = None,
    rng: RngLike = None,
    n_cycles: Optional[int] = None,
) -> TraceSet:
    """The paper's ``T_device = Pw(device, n)``."""
    scope = oscilloscope if oscilloscope is not None else Oscilloscope()
    return scope.acquire(device, n_traces, make_rng(rng), n_cycles)


class MeasurementBench:
    """One measurement setup shared across a whole experiment.

    Holds the oscilloscope and a seeded RNG so campaigns are exactly
    reproducible, and caches acquired trace sets per device.
    """

    def __init__(
        self,
        oscilloscope: Optional[Oscilloscope] = None,
        seed: RngLike = None,
    ):
        self.oscilloscope = oscilloscope if oscilloscope is not None else Oscilloscope()
        self.rng = make_rng(seed)
        self._cache: Dict[str, TraceSet] = {}

    def measure(
        self,
        device: Device,
        n_traces: int,
        n_cycles: Optional[int] = None,
        cache: bool = True,
    ) -> TraceSet:
        """Acquire (or reuse) ``n_traces`` traces for ``device``.

        The cache keys on the *resolved* cycle count so that
        ``n_cycles=None`` and an explicit ``n_cycles=default_cycles``
        hit the same entry instead of acquiring twice.
        """
        key = f"{device.name}:{device.resolve_cycles(n_cycles)}"
        if cache and key in self._cache and self._cache[key].n_traces >= n_traces:
            cached = self._cache[key]
            return TraceSet(cached.device_name, cached.matrix[:n_traces].copy())
        traces = self.oscilloscope.acquire(device, n_traces, self.rng, n_cycles)
        if cache:
            self._cache[key] = traces
        return traces

    def measure_all(
        self,
        devices: Iterable[Device],
        n_traces: int,
        n_cycles: Optional[int] = None,
    ) -> Dict[str, TraceSet]:
        """Acquire the same number of traces on several devices."""
        return {
            device.name: self.measure(device, n_traces, n_cycles)
            for device in devices
        }

    def clear_cache(self) -> None:
        self._cache.clear()
