"""Distinguishers and confidence distances (paper Section V.A).

Given the correlation sets ``C_X,y`` of one RefD against every DUT, a
distinguisher picks the DUT that contains the watermarked IP and
reports a *confidence distance* — the relative gap between the best and
second-best score:

* higher-mean:     ``Delta_mean = 100 * (1 - max2(scores) / max(scores))``
* lower-variance:  ``Delta_v    = 100 * (1 - min(scores) / min2(scores))``

The paper's experimental finding — reproduced by experiment E10 — is
that the variance distinguisher separates far better than the mean.
Extension distinguishers beyond the paper (median, minimum, Fisher-z
mean) share the same interface for the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.correlation import fisher_z


def max2(values: Sequence[float]) -> float:
    """The second-highest value of a set (paper's ``max2``)."""
    ordered = sorted(values, reverse=True)
    if len(ordered) < 2:
        raise ValueError("max2 needs at least two values")
    return float(ordered[1])


def min2(values: Sequence[float]) -> float:
    """The second-smallest value of a set (paper's ``min2``)."""
    ordered = sorted(values)
    if len(ordered) < 2:
        raise ValueError("min2 needs at least two values")
    return float(ordered[1])


def confidence_distance_higher(scores: Sequence[float]) -> float:
    """``100 * (1 - second_best / best)`` for higher-is-better scores.

    This is the paper's ``Delta_mean`` when applied to correlation
    means.  Result is in percent; 0 means a tie.
    """
    best = max(scores)
    second = max2(scores)
    if best == 0:
        return 0.0
    return 100.0 * (1.0 - second / best)


def confidence_distance_lower(scores: Sequence[float]) -> float:
    """``100 * (1 - best / second_best)`` for lower-is-better scores.

    This is the paper's ``Delta_v`` when applied to correlation
    variances.
    """
    best = min(scores)
    second = min2(scores)
    if second == 0:
        return 0.0
    return 100.0 * (1.0 - best / second)


@dataclass(frozen=True)
class Verdict:
    """One distinguisher's decision over a set of candidate DUTs."""

    distinguisher: str
    chosen_dut: str
    confidence_percent: float
    scores: Dict[str, float]


class Distinguisher:
    """Interface: score one C set; pick the best DUT among several."""

    #: Short name used in reports.
    name: str = "abstract"
    #: True when a higher score indicates the matching DUT.
    higher_is_better: bool = True

    def score(self, coefficients: np.ndarray) -> float:
        """Scalar statistic of one correlation-coefficient set."""
        raise NotImplementedError

    def identify(self, c_sets: Mapping[str, np.ndarray]) -> Verdict:
        """Decide which DUT matches, from its per-DUT C sets."""
        if len(c_sets) < 2:
            raise ValueError("identification needs at least two candidate DUTs")
        scores = {name: self.score(np.asarray(c)) for name, c in c_sets.items()}
        values = list(scores.values())
        if self.higher_is_better:
            chosen = max(scores, key=lambda name: scores[name])
            confidence = confidence_distance_higher(values)
        else:
            chosen = min(scores, key=lambda name: scores[name])
            confidence = confidence_distance_lower(values)
        return Verdict(
            distinguisher=self.name,
            chosen_dut=chosen,
            confidence_percent=confidence,
            scores=scores,
        )


class HigherMeanDistinguisher(Distinguisher):
    """The paper's first distinguisher: highest mean correlation."""

    name = "higher-mean"
    higher_is_better = True

    def score(self, coefficients: np.ndarray) -> float:
        return float(np.mean(coefficients))


class LowerVarianceDistinguisher(Distinguisher):
    """The paper's second (and winning) distinguisher: lowest variance."""

    name = "lower-variance"
    higher_is_better = False

    def score(self, coefficients: np.ndarray) -> float:
        return float(np.var(coefficients))


class HigherMedianDistinguisher(Distinguisher):
    """Extension: median correlation (robust to outlier coefficients)."""

    name = "higher-median"
    higher_is_better = True

    def score(self, coefficients: np.ndarray) -> float:
        return float(np.median(coefficients))


class HigherMinimumDistinguisher(Distinguisher):
    """Extension: worst-case correlation across the m draws."""

    name = "higher-minimum"
    higher_is_better = True

    def score(self, coefficients: np.ndarray) -> float:
        return float(np.min(coefficients))


class FisherZMeanDistinguisher(Distinguisher):
    """Extension: mean of Fisher-z-transformed coefficients.

    The z-transform stretches the scale near |rho| = 1, amplifying the
    gap between a 0.99 match and a 0.94 near-collision that the raw
    mean compresses.
    """

    name = "fisher-z-mean"
    higher_is_better = True

    def score(self, coefficients: np.ndarray) -> float:
        return float(np.mean(fisher_z(coefficients)))


#: The paper's two distinguishers, in presentation order.
PAPER_DISTINGUISHERS = (HigherMeanDistinguisher(), LowerVarianceDistinguisher())

#: All distinguishers (paper + extensions) for the E10 ablation.
ALL_DISTINGUISHERS = PAPER_DISTINGUISHERS + (
    HigherMedianDistinguisher(),
    HigherMinimumDistinguisher(),
    FisherZMeanDistinguisher(),
)
