"""Uniform distinct selection — the paper's ``U_X(k)``.

Section III defines ``U_X(k)`` as a function that randomly selects
``k`` *distinct* elements uniformly inside a set ``X``.  Selections are
independent across calls (the same trace may appear in two different
k-selections — that is precisely the event ζ whose probability the
paper's parameter analysis bounds).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.acquisition.traces import TraceSet


def uniform_distinct_indices(
    n_available: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """``k`` distinct indices drawn uniformly from ``range(n_available)``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k > n_available:
        raise ValueError(
            f"cannot select {k} distinct elements from a set of {n_available}"
        )
    return rng.choice(n_available, size=k, replace=False)


def select_traces(
    traces: TraceSet, k: int, rng: np.random.Generator
) -> np.ndarray:
    """``U_X(k)`` over a trace set: a ``(k, l)`` matrix of distinct traces."""
    indices = uniform_distinct_indices(traces.n_traces, k, rng)
    return traces.matrix[indices]


def selection_indices_batch(
    n_available: int,
    k: int,
    m: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``m`` independent k-selections, as an ``(m, k)`` index matrix.

    Each row is one ``U_X(k)`` draw; rows are independent, so an index
    may repeat *across* rows (event ζ) but never *within* a row.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    return np.stack(
        [uniform_distinct_indices(n_available, k, rng) for _ in range(m)]
    )


def selection_membership_batch(
    n_available: int,
    k: int,
    m: int,
    trials: int,
    rng: np.random.Generator,
    element: int = 0,
) -> np.ndarray:
    """Membership of one element across ``trials x m`` k-selections.

    Returns a boolean ``(trials, m)`` matrix whose entry ``[t, j]`` is
    the event "``element`` appears in the j-th ``U_X(k)`` draw of trial
    ``t``".  The matrix is *exactly* distributed like running
    :func:`selection_indices_batch` per trial and testing membership:
    under uniform distinct selection each element lands in a given
    k-selection with probability ``k / n_available``, independently
    across selections — so the whole batch collapses into a single RNG
    call instead of ``trials * m`` index draws.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if k > n_available:
        raise ValueError(
            f"cannot select {k} distinct elements from a set of {n_available}"
        )
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= element < n_available:
        raise ValueError(
            f"element {element} out of range [0, {n_available})"
        )
    return rng.random((trials, m)) < k / n_available


def count_cross_selection_reuse(indices: np.ndarray) -> int:
    """Number of elements appearing in more than one row of a batch.

    Used by the Monte-Carlo validation of the paper's ``P(ζ)``.
    """
    if indices.ndim != 2:
        raise ValueError("indices must be a 2-D (m, k) matrix")
    flat = indices.reshape(-1)
    values, counts = np.unique(flat, return_counts=True)
    return int(np.sum(counts > 1))


def batch_has_reuse(indices: np.ndarray) -> bool:
    """True when some element appears in more than one selection (event ζ
    for that element / batch)."""
    return count_cross_selection_reuse(indices) > 0


def reuse_of_element(indices: np.ndarray, element: int) -> bool:
    """Event ζ for a *specific* element: it appears in ≥ 2 selections.

    This is the exact event the paper's closed form describes for one
    trace ``t_i``.
    """
    if indices.ndim != 2:
        raise ValueError("indices must be a 2-D (m, k) matrix")
    appearances = int(np.sum(np.any(indices == element, axis=1)))
    return appearances >= 2


Selection = Optional[np.ndarray]
