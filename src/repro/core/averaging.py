"""k-averaged traces — the paper's ``A_device`` and ``A_device,m``.

``A_RefD = mean(U_T_RefD(k))`` is a single averaged reference trace;
``A_DUT,m = {mean(U_T_DUT(k))}_m`` is a set of ``m`` independently
drawn k-averaged traces.  Averaging ``k`` aligned traces attenuates the
measurement noise by ``sqrt(k)`` while preserving the deterministic
switching waveform — this is what turns a sub-unity-SNR single trace
into a usable signature.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.traces import TraceSet
from repro.core.selection import select_traces, selection_indices_batch


def k_averaged_trace(
    traces: TraceSet, k: int, rng: np.random.Generator
) -> np.ndarray:
    """One k-averaged trace: ``mean(U_X(k))`` (the paper's ``A_device``)."""
    selected = select_traces(traces, k, rng)
    return selected.mean(axis=0)


def k_averaged_set(
    traces: TraceSet, k: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """``m`` independent k-averaged traces (the paper's ``A_device,m``).

    Returns an ``(m, l)`` matrix; row ``i`` is ``A_device,m(i)``.
    """
    indices = selection_indices_batch(traces.n_traces, k, m, rng)
    return traces.matrix[indices].mean(axis=1)


def averaging_noise_reduction(k: int) -> float:
    """Theoretical noise-amplitude reduction factor of k-averaging."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return float(np.sqrt(k))
