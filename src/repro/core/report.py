"""Plain-text reporting in the layout of the paper's tables.

These renderers take the campaign outputs and print rows shaped like
Table I (means + Delta_mean) and Table II (variances + Delta_v), so the
benchmark harness can display paper-versus-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.core.distinguishers import (
    confidence_distance_higher,
    confidence_distance_lower,
)


def _format_cell(value: float, style: str) -> str:
    if style == "mean":
        return f"{value:.3f}"
    if style == "variance":
        return f"{value:.3e}"
    raise ValueError(f"unknown cell style {style!r}")


def render_matrix_table(
    matrix: Mapping[str, Mapping[str, float]],
    dut_order: Sequence[str],
    style: str,
    delta_label: str,
) -> str:
    """Render a RefD x DUT statistic matrix with a confidence column.

    ``matrix[ref][dut]`` holds the statistic; rows follow the mapping
    order of ``matrix``; the last column holds the row's confidence
    distance (higher-is-better for means, lower for variances).
    """
    header = ["RefD \\ DUT"] + list(dut_order) + [delta_label]
    rows: List[List[str]] = [header]
    for ref_name, per_dut in matrix.items():
        values = [per_dut[dut] for dut in dut_order]
        if style == "mean":
            delta = confidence_distance_higher(values)
        else:
            delta = confidence_distance_lower(values)
        row = [ref_name]
        row.extend(_format_cell(value, style) for value in values)
        row.append(f"{delta:.2f}%")
        rows.append(row)

    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def render_means_table(
    means: Mapping[str, Mapping[str, float]], dut_order: Sequence[str]
) -> str:
    """Table I: means of the correlation sets + Delta_mean."""
    return render_matrix_table(means, dut_order, "mean", "Delta_mean")


def render_variances_table(
    variances: Mapping[str, Mapping[str, float]], dut_order: Sequence[str]
) -> str:
    """Table II: variances of the correlation sets + Delta_v."""
    return render_matrix_table(variances, dut_order, "variance", "Delta_v")


def render_comparison(
    label: str,
    paper_value: float,
    measured_value: float,
    fmt: str = "{:.4g}",
) -> str:
    """One 'paper vs measured' line for EXPERIMENTS.md-style output."""
    paper_text = fmt.format(paper_value)
    measured_text = fmt.format(measured_value)
    return f"{label}: paper={paper_text}  measured={measured_text}"


def render_verdicts(report) -> str:
    """Human-readable verdict block for a VerificationReport."""
    lines = [f"Reference device: {report.ref_name}"]
    for verdict in report.verdicts:
        lines.append(
            f"  [{verdict.distinguisher}] -> {verdict.chosen_dut} "
            f"(confidence distance {verdict.confidence_percent:.2f}%)"
        )
    lines.append(f"  unanimous: {report.unanimous}")
    return "\n".join(lines)


def summarize_scores(scores: Dict[str, float], style: str = "mean") -> str:
    """One-line per-DUT score summary."""
    parts = [f"{name}={_format_cell(value, style)}" for name, value in scores.items()]
    return ", ".join(parts)
