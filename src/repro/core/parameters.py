"""Parameter selection for the correlation process (paper Section V.B).

With ``n2 = alpha * k * m`` DUT traces, the probability that one given
trace is used by a single k-selection is ``P(t_i) = 1 / (alpha m)``,
and the probability of the event ζ — "for m selections, the trace t_i
is selected more than one time" — has the closed form

    P(zeta) = f_alpha(m)
            = 1 - (1 + (m-1)/(alpha m)) * (1 - 1/(alpha m))^(m-1)

with the two properties the paper highlights:

* P1: for fixed m, ``f_alpha(m) -> 0`` as ``alpha -> +inf``;
* P2: for fixed alpha, ``f_alpha(m) -> 1 - ((alpha+1)/alpha) e^(-1/alpha)``
  as ``m -> +inf`` — so the designer first chooses the acceptable
  P(zeta) (hence alpha), then the smallest m close enough to the limit,
  then k freely (it only costs measurement time), and finally
  ``n2 = alpha k m``.

The paper's example: ``alpha = 10`` gives a limit of about 0.00468;
staying within 5 % of the limit needs ``m`` around 17, and the chosen
``(alpha, m, k) = (10, 20, 50)`` fixes ``P(zeta) ~= 0.0045`` and
``n2 = 10 000``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.process import ProcessParameters


def single_selection_probability(alpha: float, m: int) -> float:
    """``P(t_i) = 1 / (alpha m)``: chance one trace is in one selection."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    return 1.0 / (alpha * m)


def reuse_probability(alpha: float, m: int) -> float:
    """The paper's ``P(zeta) = f_alpha(m)`` closed form."""
    p = single_selection_probability(alpha, m)
    return 1.0 - (1.0 + (m - 1) * p) * (1.0 - p) ** (m - 1)


def reuse_probability_limit(alpha: float) -> float:
    """Property P2: ``lim_{m->inf} f_alpha(m) = 1 - ((alpha+1)/alpha) e^{-1/alpha}``."""
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    return 1.0 - ((alpha + 1.0) / alpha) * math.exp(-1.0 / alpha)


def alpha_for_target_probability(p_target: float) -> float:
    """Smallest alpha whose limiting P(zeta) is at most ``p_target``.

    Solved by bisection on the strictly decreasing limit function.
    """
    if not 0 < p_target < 1:
        raise ValueError(f"target probability must be in (0, 1), got {p_target}")
    low, high = 1.0, 1.0
    if reuse_probability_limit(low) <= p_target:
        return low
    while reuse_probability_limit(high) > p_target:
        high *= 2.0
        if high > 1e9:
            raise ValueError("could not bracket alpha; target too small")
    for _ in range(200):
        mid = 0.5 * (low + high)
        if reuse_probability_limit(mid) > p_target:
            low = mid
        else:
            high = mid
    return high


def minimal_m_near_limit(
    alpha: float, rel_tol: float = 0.05, m_max: int = 10_000
) -> int:
    """Smallest m with ``f_alpha(m)`` within ``rel_tol`` of its limit.

    The paper's Fig. 5 reads this off graphically (m >= 17 for
    alpha = 10 at 5 %); this computes it exactly.
    """
    if not 0 < rel_tol < 1:
        raise ValueError(f"rel_tol must be in (0, 1), got {rel_tol}")
    limit = reuse_probability_limit(alpha)
    if limit == 0:
        return 1
    for m in range(1, m_max + 1):
        if abs(reuse_probability(alpha, m) - limit) <= rel_tol * limit:
            return m
    raise ValueError(f"no m <= {m_max} reaches the limit within {rel_tol}")


def f_alpha_series(alpha: float, m_max: int) -> list:
    """``[(m, f_alpha(m))]`` for m in [1, m_max] — the Fig. 5 curve."""
    if m_max <= 0:
        raise ValueError(f"m_max must be positive, got {m_max}")
    return [(m, reuse_probability(alpha, m)) for m in range(1, m_max + 1)]


@dataclass(frozen=True)
class ParameterPlan:
    """A fully resolved parameter choice with its provenance."""

    parameters: ProcessParameters
    alpha: float
    p_zeta: float
    p_zeta_limit: float


def plan_parameters(
    k: int = 50,
    alpha: float = 10.0,
    rel_tol: float = 0.05,
    n1: int = None,
    m: int = None,
) -> ParameterPlan:
    """Derive (n1, n2, k, m) following the paper's recipe.

    1. ``alpha`` fixes the limiting reuse probability;
    2. ``m`` defaults to the smallest value within ``rel_tol`` of that
       limit (Fig. 5's construction);
    3. ``k`` trades acquisition time for averaging gain, free of
       P(zeta);
    4. ``n2 = alpha k m``; ``n1`` defaults to ``8 k`` (paper: 400 for
       k = 50).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    chosen_m = m if m is not None else minimal_m_near_limit(alpha, rel_tol)
    n2 = math.ceil(alpha * k * chosen_m)
    chosen_n1 = n1 if n1 is not None else 8 * k
    parameters = ProcessParameters(k=k, m=chosen_m, n1=chosen_n1, n2=n2)
    return ParameterPlan(
        parameters=parameters,
        alpha=alpha,
        p_zeta=reuse_probability(alpha, chosen_m),
        p_zeta_limit=reuse_probability_limit(alpha),
    )


#: The paper's exact experimental plan (Section IV/V).
PAPER_PLAN = ParameterPlan(
    parameters=ProcessParameters(k=50, m=20, n1=400, n2=10_000),
    alpha=10.0,
    p_zeta=reuse_probability(10.0, 20),
    p_zeta_limit=reuse_probability_limit(10.0),
)
