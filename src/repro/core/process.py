"""The correlation computation process (paper Section III, Fig. 2).

The process is a succession of three functions:

1. ``T_device = Pw(device, n)`` — power acquisition (done upstream by
   :mod:`repro.acquisition`);
2. ``A_device,m = {mean(U_T_device(k))}_m`` — random k-averaging;
3. ``C_RefD,DUT,m,k = {rho(A_RefD, A_DUT,m(i))}_i`` — correlation.

Only **one** k-averaged reference ``A_RefD`` is used, so "all
variations between the m elements of the set C are due only to the DUT
and not to the RefD".  An opt-out (``single_reference=False``) exists
purely for the E8 ablation that quantifies this design choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.acquisition.bench import RngLike, make_rng
from repro.acquisition.traces import TraceSet
from repro.core.averaging import k_averaged_set, k_averaged_trace
from repro.core.correlation import pearson_many, pearson_rows
from repro.core.selection import uniform_distinct_indices


class ParameterError(Exception):
    """The (n1, n2, k, m) parameters violate the paper's constraints."""


@dataclass(frozen=True)
class ProcessParameters:
    """The four parameters of the correlation computation process.

    The paper's experimental values are the defaults: ``k = 50``,
    ``m = 20`` with ``n1 = 400`` reference traces and ``n2 = 10 000``
    DUT traces (``alpha = n2 / (k m) = 10``).
    """

    k: int = 50
    m: int = 20
    n1: int = 400
    n2: int = 10_000

    def __post_init__(self) -> None:
        if self.k <= 0 or self.m <= 0 or self.n1 <= 0 or self.n2 <= 0:
            raise ParameterError("all parameters must be positive")
        if self.n1 < self.k:
            raise ParameterError(
                f"expression (1) violated: n1 = {self.n1} < k = {self.k}"
            )
        if self.n2 < self.k * self.m:
            raise ParameterError(
                f"expression (2) violated: n2 = {self.n2} < k*m = {self.k * self.m}"
            )

    @property
    def alpha(self) -> float:
        """The oversampling ratio ``alpha = n2 / (k m) >= 1``."""
        return self.n2 / (self.k * self.m)


@dataclass
class CorrelationResult:
    """The set ``C_RefD,DUT,m,k`` plus identifying metadata."""

    ref_name: str
    dut_name: str
    parameters: ProcessParameters
    coefficients: np.ndarray = field(repr=False)

    @property
    def mean(self) -> float:
        """The paper's mean distinguisher statistic (C-bar)."""
        return float(np.mean(self.coefficients))

    @property
    def variance(self) -> float:
        """The paper's variance distinguisher statistic ``v(C)``.

        Population variance (``ddof=0``), matching the paper's ``v``.
        """
        return float(np.var(self.coefficients))

    def __len__(self) -> int:
        return len(self.coefficients)


class CorrelationProcess:
    """Runs the full Fig. 2 flow between a RefD and a DUT trace set."""

    def __init__(
        self,
        parameters: Optional[ProcessParameters] = None,
        single_reference: bool = True,
        strict: bool = True,
    ):
        self.parameters = parameters if parameters is not None else ProcessParameters()
        self.single_reference = single_reference
        self.strict = strict

    def _check_sets(self, t_ref: TraceSet, t_dut: TraceSet) -> None:
        p = self.parameters
        if t_ref.n_traces < p.k:
            raise ParameterError(
                f"reference set has {t_ref.n_traces} traces; k = {p.k} required"
            )
        if t_dut.n_traces < p.k:
            raise ParameterError(
                f"DUT set has {t_dut.n_traces} traces; k = {p.k} required"
            )
        if self.strict:
            if t_ref.n_traces < p.n1:
                raise ParameterError(
                    f"reference set has {t_ref.n_traces} traces; n1 = {p.n1} declared"
                )
            if t_dut.n_traces < p.n2:
                raise ParameterError(
                    f"DUT set has {t_dut.n_traces} traces; n2 = {p.n2} declared"
                )
        if t_ref.trace_length != t_dut.trace_length:
            raise ParameterError(
                f"trace length mismatch: RefD {t_ref.trace_length} vs "
                f"DUT {t_dut.trace_length}"
            )

    def reference_trace(
        self, t_ref: TraceSet, rng: RngLike = None
    ) -> np.ndarray:
        """Compute ``A_RefD = mean(U_T_RefD(k))``."""
        return k_averaged_trace(t_ref, self.parameters.k, make_rng(rng))

    def run(
        self,
        t_ref: TraceSet,
        t_dut: TraceSet,
        rng: RngLike = None,
        reference: Optional[np.ndarray] = None,
    ) -> CorrelationResult:
        """Produce ``C_RefD,DUT,m,k``.

        A precomputed ``reference`` (``A_RefD``) may be passed so one
        reference serves several DUTs, exactly as in the paper's
        four-DUT experiment.
        """
        self._check_sets(t_ref, t_dut)
        generator = make_rng(rng)
        p = self.parameters

        if self.single_reference:
            a_ref = (
                reference
                if reference is not None
                else k_averaged_trace(t_ref, p.k, generator)
            )
            a_dut = k_averaged_set(t_dut, p.k, p.m, generator)
            coefficients = pearson_many(a_ref, a_dut)
        else:
            # E8 ablation: a fresh reference per coefficient, which
            # injects RefD selection noise into the C set.  The index
            # draws stay interleaved (ref, dut, ref, dut, ...) to
            # preserve the historical RNG stream; the averaging and the
            # m correlations are then batched like the main path.
            ref_indices = np.empty((p.m, p.k), dtype=np.intp)
            dut_indices = np.empty((p.m, p.k), dtype=np.intp)
            for i in range(p.m):
                ref_indices[i] = uniform_distinct_indices(
                    t_ref.n_traces, p.k, generator
                )
                dut_indices[i] = uniform_distinct_indices(
                    t_dut.n_traces, p.k, generator
                )
            a_refs = t_ref.matrix[ref_indices].mean(axis=1)
            a_duts = t_dut.matrix[dut_indices].mean(axis=1)
            coefficients = pearson_rows(a_refs, a_duts)

        return CorrelationResult(
            ref_name=t_ref.device_name,
            dut_name=t_dut.device_name,
            parameters=p,
            coefficients=coefficients,
        )
