"""End-to-end watermark verification.

Ties the whole pipeline together: given trace sets for a reference
device and a collection of devices under test, the
:class:`WatermarkVerifier` runs the correlation computation process
against every DUT, applies the distinguishers and returns a structured
:class:`VerificationReport`.  This implements the two use cases of the
paper's introduction:

* **clone detection** (:meth:`WatermarkVerifier.identify`) — find which
  DUT contains the RefD's watermarked IP, with a confidence distance
  usable "as proof in front of a court";
* **counterfeit detection** (:meth:`WatermarkVerifier.screen`) — flag
  devices whose correlation statistics are incompatible with the
  watermark, i.e. counterfeits in a lot that should contain it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.acquisition.bench import RngLike, make_rng
from repro.acquisition.traces import TraceSet
from repro.core.correlation import expected_correlation_variance
from repro.core.distinguishers import (
    Distinguisher,
    PAPER_DISTINGUISHERS,
    Verdict,
)
from repro.core.process import (
    CorrelationProcess,
    CorrelationResult,
    ProcessParameters,
)


@dataclass
class VerificationReport:
    """Full outcome of one RefD-against-many-DUTs verification."""

    ref_name: str
    parameters: ProcessParameters
    results: Dict[str, CorrelationResult]
    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def means(self) -> Dict[str, float]:
        """Mean correlation per DUT (Table I row)."""
        return {name: result.mean for name, result in self.results.items()}

    @property
    def variances(self) -> Dict[str, float]:
        """Correlation variance per DUT (Table II row)."""
        return {name: result.variance for name, result in self.results.items()}

    def verdict_of(self, distinguisher_name: str) -> Verdict:
        for verdict in self.verdicts:
            if verdict.distinguisher == distinguisher_name:
                return verdict
        raise KeyError(f"no verdict from distinguisher {distinguisher_name!r}")

    @property
    def unanimous(self) -> bool:
        """True when every distinguisher picked the same DUT."""
        chosen = {verdict.chosen_dut for verdict in self.verdicts}
        return len(chosen) == 1


@dataclass(frozen=True)
class ScreeningResult:
    """Counterfeit screening outcome for one device."""

    device_name: str
    mean: float
    variance: float
    authentic: bool
    reason: str


class WatermarkVerifier:
    """Runs the paper's verification scheme against one or many DUTs."""

    def __init__(
        self,
        parameters: Optional[ProcessParameters] = None,
        distinguishers: Sequence[Distinguisher] = PAPER_DISTINGUISHERS,
        single_reference: bool = True,
        strict: bool = True,
    ):
        self.process = CorrelationProcess(
            parameters=parameters,
            single_reference=single_reference,
            strict=strict,
        )
        self.distinguishers = tuple(distinguishers)
        if not self.distinguishers:
            raise ValueError("at least one distinguisher is required")

    @property
    def parameters(self) -> ProcessParameters:
        return self.process.parameters

    def correlate(
        self,
        t_ref: TraceSet,
        t_duts: Mapping[str, TraceSet],
        rng: RngLike = None,
    ) -> Dict[str, CorrelationResult]:
        """Run the correlation process for every DUT.

        One single ``A_RefD`` is drawn and shared by all DUTs, exactly
        as in the paper's experiment.
        """
        if not t_duts:
            raise ValueError("at least one DUT trace set is required")
        generator = make_rng(rng)
        reference = (
            self.process.reference_trace(t_ref, generator)
            if self.process.single_reference
            else None
        )
        results: Dict[str, CorrelationResult] = {}
        for name, t_dut in t_duts.items():
            results[name] = self.process.run(
                t_ref, t_dut, generator, reference=reference
            )
        return results

    def identify(
        self,
        t_ref: TraceSet,
        t_duts: Mapping[str, TraceSet],
        rng: RngLike = None,
    ) -> VerificationReport:
        """Clone detection: which DUT contains the RefD's IP?"""
        results = self.correlate(t_ref, t_duts, rng)
        c_sets = {name: result.coefficients for name, result in results.items()}
        verdicts = [d.identify(c_sets) for d in self.distinguishers]
        return VerificationReport(
            ref_name=t_ref.device_name,
            parameters=self.parameters,
            results=results,
            verdicts=verdicts,
        )

    def calibrate_mean_floor(
        self,
        t_ref: TraceSet,
        t_golden: TraceSet,
        rng: RngLike = None,
        n_sigmas: float = 10.0,
    ) -> float:
        """Derive a screening floor from a second genuine device.

        On highly linear FSMs even an *unmarked* device correlates
        strongly with the reference (the counter's switching dominates
        the trace), so a universal constant floor does not exist.  The
        practical recipe: manufacture a second trusted device (the
        "golden" DUT), run the correlation process RefD-vs-golden, and
        place the floor ``n_sigmas`` standard deviations below the
        genuine correlation level.  Genuine devices of the same design
        sit well above it; missing or re-keyed watermarks fall below.
        """
        if n_sigmas <= 0:
            raise ValueError("n_sigmas must be positive")
        result = self.process.run(t_ref, t_golden, make_rng(rng))
        spread = float(np.sqrt(result.variance))
        return result.mean - n_sigmas * spread

    def screen(
        self,
        t_ref: TraceSet,
        t_duts: Mapping[str, TraceSet],
        rng: RngLike = None,
        variance_margin: float = 4.0,
        mean_floor: float = 0.5,
    ) -> List[ScreeningResult]:
        """Counterfeit detection: which devices carry the watermark?

        A device is declared authentic when its correlation variance is
        within ``variance_margin`` times the theoretical sampling
        variance at its observed mean correlation *and* the mean itself
        clears ``mean_floor``.  Unlike :meth:`identify`, this is an
        absolute per-device test, usable when every device in the lot
        should contain the IP.
        """
        results = self.correlate(t_ref, t_duts, rng)
        trace_length = next(iter(t_duts.values())).trace_length
        screenings: List[ScreeningResult] = []
        for name, result in results.items():
            mean = result.mean
            variance = result.variance
            theoretical = expected_correlation_variance(
                float(np.clip(mean, -1.0, 1.0)), trace_length
            )
            if mean < mean_floor:
                authentic = False
                reason = f"mean correlation {mean:.3f} below floor {mean_floor}"
            elif variance > variance_margin * max(theoretical, 1e-12):
                authentic = False
                reason = (
                    f"variance {variance:.3e} exceeds {variance_margin} x "
                    f"theoretical {theoretical:.3e}"
                )
            else:
                authentic = True
                reason = "correlation statistics consistent with the watermark"
            screenings.append(
                ScreeningResult(
                    device_name=name,
                    mean=mean,
                    variance=variance,
                    authentic=authentic,
                    reason=reason,
                )
            )
        return screenings
