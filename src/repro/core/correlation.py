"""Pearson correlation and the correlation-coefficient sets.

The paper's verification statistic is the Pearson coefficient

    rho(x, y) = sum((x_i - mean(x)) (y_i - mean(y)))
                / sqrt(sum((x_i - mean(x))^2) * sum((y_i - mean(y))^2))

computed between the single averaged reference ``A_RefD`` and each of
the ``m`` averaged DUT traces, yielding the set ``C_RefD,DUT,m,k``.
Pearson's invariance to gain and offset is what makes the scheme
insensitive to die-to-die process variation.
"""

from __future__ import annotations

import numpy as np


class DegenerateTraceError(Exception):
    """A trace with zero variance cannot be correlated."""


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length traces."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or y.ndim != 1:
        raise ValueError("pearson expects 1-D traces")
    if x.size != y.size:
        raise ValueError(f"trace length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("traces must have at least two samples")
    xc = x - x.mean()
    yc = y - y.mean()
    # sqrt(sx) * sqrt(sy), not sqrt(sx * sy): the product of two tiny
    # sums underflows to subnormal range and loses the result's
    # precision long before either factor does.
    denominator = np.sqrt(np.sum(xc * xc)) * np.sqrt(np.sum(yc * yc))
    if denominator == 0:
        raise DegenerateTraceError("a trace has zero variance")
    value = float(np.sum(xc * yc) / denominator)
    # Guard against floating-point excursions outside [-1, 1].
    return float(np.clip(value, -1.0, 1.0))


def pearson_many(reference: np.ndarray, traces: np.ndarray) -> np.ndarray:
    """Pearson of one reference against each row of ``traces``.

    Vectorised equivalent of ``[pearson(reference, t) for t in traces]``.
    """
    reference = np.asarray(reference, dtype=float)
    traces = np.asarray(traces, dtype=float)
    if reference.ndim != 1:
        raise ValueError("reference must be 1-D")
    if traces.ndim != 2:
        raise ValueError("traces must be a 2-D (m, l) matrix")
    if traces.shape[1] != reference.size:
        raise ValueError(
            f"trace length mismatch: {traces.shape[1]} vs {reference.size}"
        )
    ref_centered = reference - reference.mean()
    ref_norm = np.sqrt(np.sum(ref_centered**2))
    rows_centered = traces - traces.mean(axis=1, keepdims=True)
    row_norms = np.sqrt(np.sum(rows_centered**2, axis=1))
    if ref_norm == 0 or np.any(row_norms == 0):
        raise DegenerateTraceError("a trace has zero variance")
    values = rows_centered @ ref_centered / (row_norms * ref_norm)
    return np.clip(values, -1.0, 1.0)


def pearson_rows(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pearson of matched rows: ``[pearson(x[i], y[i]) for i]``.

    Vectorised pairwise-row correlation between two ``(m, l)``
    matrices; the denominator is computed as ``sqrt(sum_x) *
    sqrt(sum_y)`` exactly like :func:`pearson`, so each entry is
    bit-identical to the scalar call.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2 or y.ndim != 2:
        raise ValueError("pearson_rows expects 2-D (m, l) matrices")
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    x_centered = x - x.mean(axis=1, keepdims=True)
    y_centered = y - y.mean(axis=1, keepdims=True)
    denominator = np.sqrt(
        np.sum(x_centered * x_centered, axis=1)
    ) * np.sqrt(np.sum(y_centered * y_centered, axis=1))
    if np.any(denominator == 0):
        raise DegenerateTraceError("a trace has zero variance")
    values = np.sum(x_centered * y_centered, axis=1) / denominator
    return np.clip(values, -1.0, 1.0)


def fisher_z(rho: np.ndarray) -> np.ndarray:
    """Fisher z-transform ``atanh(rho)`` (variance-stabilising).

    Used by the extension distinguishers; clipped slightly inside
    (-1, 1) to stay finite.
    """
    rho = np.clip(np.asarray(rho, dtype=float), -0.999999, 0.999999)
    return np.arctanh(rho)


def expected_match_correlation(k: int, noise_sigma_rel: float) -> float:
    """First-order prediction of the matching-pair correlation.

    For two k-averaged traces of the *same* deterministic waveform with
    relative noise ``sigma`` (noise std / signal std), the expected
    Pearson coefficient is ``1 / (1 + sigma^2 / k)``.  Used for
    calibration sanity checks, not by the verification itself.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if noise_sigma_rel < 0:
        raise ValueError("noise sigma must be non-negative")
    return 1.0 / (1.0 + noise_sigma_rel**2 / k)


def expected_correlation_variance(rho: float, trace_length: int) -> float:
    """Asymptotic sampling variance of the Pearson estimate.

    ``Var(rho_hat) ~= (1 - rho^2)^2 / l`` for trace length ``l``.  This
    is why the paper's *variance* distinguisher works so well: the
    matching pair's high correlation collapses the sampling variance
    quadratically.
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError("rho must be in [-1, 1]")
    if trace_length < 2:
        raise ValueError("trace_length must be at least 2")
    return (1.0 - rho**2) ** 2 / trace_length
