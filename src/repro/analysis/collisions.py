"""Key-collision analysis of the leakage component.

The paper claims the watermark key "reduces the risk of collision
between different IPs with the same FSM".  This module quantifies that
claim exhaustively: for a given FSM state sequence it computes the
pairwise correlation between the H-register switching series of every
pair of the 256 possible keys — the quantity that would have to be
high for two differently-keyed IPs to collide in the verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.attacks.forgery import predicted_h_switching


@dataclass(frozen=True)
class CollisionSummary:
    """Distribution of cross-key switching correlations."""

    n_keys: int
    mean: float
    std: float
    minimum: float
    maximum: float
    worst_pair: Tuple[int, int]

    @property
    def n_pairs(self) -> int:
        return self.n_keys * (self.n_keys - 1) // 2


def switching_matrix(
    state_codes: Sequence[int], keys: Sequence[int] = None, width: int = 8
) -> np.ndarray:
    """H-switching series for every key: shape ``(n_keys, n_cycles)``."""
    key_list = list(keys) if keys is not None else list(range(256))
    return np.stack(
        [predicted_h_switching(state_codes, kw, width) for kw in key_list]
    )


def cross_key_correlations(
    state_codes: Sequence[int], keys: Sequence[int] = None, width: int = 8
) -> np.ndarray:
    """Full correlation matrix between per-key switching series."""
    matrix = switching_matrix(state_codes, keys, width)
    centered = matrix - matrix.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.sum(centered**2, axis=1))
    if np.any(norms == 0):
        raise ValueError("a key produced a constant switching series")
    normalized = centered / norms[:, np.newaxis]
    return normalized @ normalized.T


def collision_summary(
    state_codes: Sequence[int], keys: Sequence[int] = None, width: int = 8
) -> CollisionSummary:
    """Summarise the off-diagonal (cross-key) correlation distribution."""
    key_list = list(keys) if keys is not None else list(range(256))
    corr = cross_key_correlations(state_codes, key_list, width)
    n = len(key_list)
    upper_i, upper_j = np.triu_indices(n, k=1)
    values = corr[upper_i, upper_j]
    worst_index = int(np.argmax(np.abs(values)))
    worst_pair = (key_list[upper_i[worst_index]], key_list[upper_j[worst_index]])
    return CollisionSummary(
        n_keys=n,
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        maximum=float(values.max()),
        worst_pair=worst_pair,
    )


def expected_random_correlation_bound(
    n_cycles: int, confidence_z: float = 3.0
) -> float:
    """Null-model bound: |rho| of two independent series of length l
    stays within ``z / sqrt(l)`` with high probability."""
    if n_cycles < 2:
        raise ValueError("n_cycles must be at least 2")
    return confidence_z / np.sqrt(n_cycles)


def keys_below_bound(
    state_codes: Sequence[int],
    bound: float = None,
    keys: Sequence[int] = None,
    width: int = 8,
) -> List[Tuple[int, int]]:
    """Pairs of keys whose collision correlation EXCEEDS the bound.

    An empty list is the paper's claim holding exhaustively: no key
    pair collides beyond what two random series would show.
    """
    key_list = list(keys) if keys is not None else list(range(256))
    corr = cross_key_correlations(state_codes, key_list, width)
    threshold = (
        bound
        if bound is not None
        else expected_random_correlation_bound(len(list(state_codes)), 5.0)
    )
    offenders: List[Tuple[int, int]] = []
    n = len(key_list)
    for i in range(n):
        for j in range(i + 1, n):
            if abs(corr[i, j]) > threshold:
                offenders.append((key_list[i], key_list[j]))
    return offenders
