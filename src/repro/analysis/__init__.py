"""Statistics helpers and Monte-Carlo validation of the parameter math."""

from repro.analysis.aggregate import (
    group_rows,
    mean_by,
    pivot,
    render_pivot,
    render_rows,
)
from repro.analysis.collisions import (
    CollisionSummary,
    collision_summary,
    cross_key_correlations,
    expected_random_correlation_bound,
    keys_below_bound,
    switching_matrix,
)
from repro.analysis.roc import (
    ROCCurve,
    detection_gap_sweep,
    roc_from_scores,
    sample_mean_scores,
    screening_roc,
)
from repro.analysis.montecarlo import (
    ReuseEstimate,
    estimate_reuse_probability,
    property_p1_numeric,
    property_p2_numeric,
)
from repro.analysis.stats import (
    SummaryStats,
    binomial_confidence,
    signal_to_noise_ratio,
    variance_ratio_f_test,
    welch_t_test,
)

__all__ = [
    "group_rows",
    "mean_by",
    "pivot",
    "render_pivot",
    "render_rows",
    "SummaryStats",
    "welch_t_test",
    "variance_ratio_f_test",
    "binomial_confidence",
    "signal_to_noise_ratio",
    "ReuseEstimate",
    "estimate_reuse_probability",
    "property_p1_numeric",
    "property_p2_numeric",
    "CollisionSummary",
    "collision_summary",
    "cross_key_correlations",
    "switching_matrix",
    "expected_random_correlation_bound",
    "keys_below_bound",
    "ROCCurve",
    "roc_from_scores",
    "screening_roc",
    "sample_mean_scores",
    "detection_gap_sweep",
]
