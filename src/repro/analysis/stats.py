"""Statistical helpers shared by the analysis and ablation code."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    variance: float
    minimum: float
    median: float
    maximum: float

    @classmethod
    def of(cls, sample: Sequence[float]) -> "SummaryStats":
        data = np.asarray(sample, dtype=float)
        if data.size == 0:
            raise ValueError("cannot summarise an empty sample")
        return cls(
            n=int(data.size),
            mean=float(np.mean(data)),
            variance=float(np.var(data)),
            minimum=float(np.min(data)),
            median=float(np.median(data)),
            maximum=float(np.max(data)),
        )


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's unequal-variance t-test; returns (statistic, p-value).

    Used to check that a matching C set and a non-matching C set are
    statistically distinct populations.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("both samples need at least two observations")
    result = stats.ttest_ind(a, b, equal_var=False)
    return float(result.statistic), float(result.pvalue)


def variance_ratio_f_test(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """F-test of equal variances; returns (F, p-value).

    The paper's variance distinguisher implicitly relies on the match
    variance being genuinely smaller; the F-test quantifies that.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("both samples need at least two observations")
    var_a = np.var(a, ddof=1)
    var_b = np.var(b, ddof=1)
    if var_b == 0:
        raise ValueError("second sample has zero variance")
    f = float(var_a / var_b)
    df_a, df_b = a.size - 1, b.size - 1
    # Two-sided p-value.
    cdf = stats.f.cdf(f, df_a, df_b)
    p = float(2 * min(cdf, 1 - cdf))
    return f, p


def binomial_confidence(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a success proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    p_hat = successes / trials
    denom = 1 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


def signal_to_noise_ratio(deterministic: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR of one noisy trace against its noise-free waveform."""
    deterministic = np.asarray(deterministic, dtype=float)
    noisy = np.asarray(noisy, dtype=float)
    if deterministic.shape != noisy.shape:
        raise ValueError("shape mismatch between deterministic and noisy traces")
    noise = noisy - deterministic
    noise_power = float(np.var(noise))
    if noise_power == 0:
        raise ValueError("noise power is zero; SNR undefined")
    return float(np.var(deterministic) / noise_power)
