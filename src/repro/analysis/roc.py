"""ROC analysis of the screening decision.

The paper's distinguishers answer a *relative* question (which DUT
matches).  Counterfeit screening answers an *absolute* one (does this
device carry the watermark?), which needs a threshold — and thresholds
need ROC curves.  This module builds the ROC of a scalar score
(correlation mean, or negated variance) over labelled genuine /
counterfeit score samples, using the statistical model of the
correlation process to generate the populations cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.acquisition.bench import RngLike, make_rng


@dataclass(frozen=True)
class ROCCurve:
    """False-positive vs true-positive rates over all thresholds."""

    thresholds: np.ndarray
    false_positive_rates: np.ndarray
    true_positive_rates: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve (trapezoidal, on sorted FPR)."""
        order = np.argsort(self.false_positive_rates)
        return float(
            np.trapezoid(
                self.true_positive_rates[order], self.false_positive_rates[order]
            )
        )

    def operating_point(self, max_fpr: float) -> Tuple[float, float, float]:
        """Best (threshold, FPR, TPR) with FPR at most ``max_fpr``."""
        if not 0 <= max_fpr <= 1:
            raise ValueError("max_fpr must be in [0, 1]")
        admissible = self.false_positive_rates <= max_fpr
        if not np.any(admissible):
            raise ValueError(f"no operating point with FPR <= {max_fpr}")
        candidates = np.where(admissible)[0]
        best = candidates[np.argmax(self.true_positive_rates[candidates])]
        return (
            float(self.thresholds[best]),
            float(self.false_positive_rates[best]),
            float(self.true_positive_rates[best]),
        )


def roc_from_scores(
    genuine_scores: Sequence[float], counterfeit_scores: Sequence[float]
) -> ROCCurve:
    """ROC of a higher-is-genuine score.

    A device is declared genuine when its score clears the threshold;
    TPR = genuine correctly accepted, FPR = counterfeits wrongly
    accepted.
    """
    genuine = np.asarray(genuine_scores, dtype=float)
    counterfeit = np.asarray(counterfeit_scores, dtype=float)
    if genuine.size == 0 or counterfeit.size == 0:
        raise ValueError("both score populations must be non-empty")
    thresholds = np.unique(np.concatenate([genuine, counterfeit]))
    # Sweep one threshold past each end so (0,0) and (1,1) appear.
    pad = np.concatenate(([thresholds[0] - 1.0], thresholds, [thresholds[-1] + 1.0]))
    tpr = np.array([(genuine >= t).mean() for t in pad])
    fpr = np.array([(counterfeit >= t).mean() for t in pad])
    return ROCCurve(thresholds=pad, false_positive_rates=fpr, true_positive_rates=tpr)


def sample_mean_scores(
    rho_genuine: float,
    rho_counterfeit: float,
    m: int,
    trace_length: int,
    n_samples: int,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample correlation-mean scores for both populations.

    Uses the asymptotic model of the C set: each of the ``m``
    coefficients is ``rho + N(0, (1 - rho^2)/sqrt(l))``-ish; the score
    is their mean.  Cheap enough to draw thousands of campaigns.
    """
    if not -1 < rho_genuine < 1 or not -1 < rho_counterfeit < 1:
        raise ValueError("correlations must be in (-1, 1)")
    if m <= 1 or trace_length < 2 or n_samples <= 0:
        raise ValueError("m > 1, trace_length >= 2, n_samples > 0 required")
    generator = make_rng(rng)

    def draw(rho: float) -> np.ndarray:
        sigma = (1 - rho**2) / np.sqrt(trace_length)
        coefficients = generator.normal(rho, sigma, size=(n_samples, m))
        return coefficients.mean(axis=1)

    return draw(rho_genuine), draw(rho_counterfeit)


def screening_roc(
    rho_genuine: float = 0.98,
    rho_counterfeit: float = 0.93,
    m: int = 20,
    trace_length: int = 1024,
    n_samples: int = 2000,
    rng: RngLike = None,
) -> ROCCurve:
    """ROC of mean-correlation screening at a given separation.

    Defaults match this reproduction's operating point (genuine ~0.98,
    unmarked/re-keyed counterfeit ~0.93 on the worst-case counters).
    """
    genuine, counterfeit = sample_mean_scores(
        rho_genuine, rho_counterfeit, m, trace_length, n_samples, rng
    )
    return roc_from_scores(genuine, counterfeit)


def detection_gap_sweep(
    gaps: Sequence[float],
    rho_genuine: float = 0.98,
    m: int = 20,
    trace_length: int = 1024,
    n_samples: int = 1000,
    rng: RngLike = None,
) -> List[Tuple[float, float]]:
    """AUC as a function of the genuine/counterfeit correlation gap."""
    generator = make_rng(rng)
    results: List[Tuple[float, float]] = []
    for gap in gaps:
        if gap <= 0 or rho_genuine - gap <= -1:
            raise ValueError(f"invalid gap {gap}")
        curve = screening_roc(
            rho_genuine,
            rho_genuine - gap,
            m,
            trace_length,
            n_samples,
            generator,
        )
        results.append((float(gap), curve.auc))
    return results
