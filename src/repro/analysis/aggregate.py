"""Tidy-table aggregation helpers (group, pivot, render).

A *tidy* table is a list of flat mappings, one observation per row —
the natural output shape of a scenario sweep and the natural input
shape of any plotting or statistics tool.  These helpers are
deliberately dependency-free (no pandas in the image): grouping and
pivoting over a handful of thousand rows is trivial in pure Python,
and the ASCII renderer keeps CLI output readable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


Row = Mapping[str, object]


def group_rows(
    rows: Sequence[Row], by: Sequence[str]
) -> "OrderedDict[Tuple[object, ...], List[Row]]":
    """Group rows by the values of ``by`` (insertion-ordered)."""
    groups: "OrderedDict[Tuple[object, ...], List[Row]]" = OrderedDict()
    for row in rows:
        key = tuple(row.get(column) for column in by)
        groups.setdefault(key, []).append(row)
    return groups


def mean_by(
    rows: Sequence[Row], by: Sequence[str], value: str
) -> List[Dict[str, object]]:
    """Mean of ``value`` per group; one tidy row per group."""
    out: List[Dict[str, object]] = []
    for key, members in group_rows(rows, by).items():
        values = [float(row[value]) for row in members if row.get(value) is not None]
        aggregated: Dict[str, object] = dict(zip(by, key))
        aggregated[value] = sum(values) / len(values) if values else float("nan")
        aggregated["n"] = len(values)
        out.append(aggregated)
    return out


def pivot(
    rows: Sequence[Row], index: str, columns: str, value: str
) -> "OrderedDict[object, OrderedDict[object, object]]":
    """Long-to-wide: ``table[index_value][column_value] = value``.

    Later rows win on duplicate cells, mirroring a dict update; feed
    pre-aggregated rows (e.g. from :func:`mean_by`) for a clean pivot.
    """
    table: "OrderedDict[object, OrderedDict[object, object]]" = OrderedDict()
    for row in rows:
        table.setdefault(row.get(index), OrderedDict())[row.get(columns)] = row.get(
            value
        )
    return table


def _format_cell(value: object) -> str:
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_rows(
    rows: Sequence[Row], columns: Optional[Sequence[str]] = None
) -> str:
    """Render tidy rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    names = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_format_cell(row.get(name)) for name in names] for row in rows]
    widths = [
        max(len(name), *(len(line[i]) for line in cells))
        for i, name in enumerate(names)
    ]
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(names))
    rule = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(line[i].rjust(widths[i]) for i in range(len(names)))
        for line in cells
    )
    return f"{header}\n{rule}\n{body}"


def render_pivot(
    table: Mapping[object, Mapping[object, object]],
    index_name: str = "",
) -> str:
    """Render a :func:`pivot` result as an aligned ASCII matrix."""
    if not table:
        return "(empty)"
    column_keys: List[object] = []
    for row in table.values():
        for key in row:
            if key not in column_keys:
                column_keys.append(key)
    rows = [
        dict(
            {index_name or "index": index},
            **{str(key): row.get(key) for key in column_keys},
        )
        for index, row in table.items()
    ]
    names = [index_name or "index"] + [str(key) for key in column_keys]
    return render_rows(rows, columns=names)


__all__ = [
    "group_rows",
    "mean_by",
    "pivot",
    "render_pivot",
    "render_rows",
]
