"""Monte-Carlo validation of the paper's parameter mathematics (E5).

The closed form

    P(zeta) = 1 - (1 + (m-1)/(alpha m)) (1 - 1/(alpha m))^(m-1)

describes the probability that one given trace out of ``n2 = alpha k m``
is selected by more than one of the ``m`` independent k-selections.
This module estimates the same probability through the selection
machinery in :mod:`repro.core.selection`, so the formula, the code and
the paper agree — and it also exercises the two limit properties P1
(alpha to infinity) and P2 (m to infinity) numerically.  The estimator
is fully vectorised: all ``trials x m`` k-selections collapse into one
RNG call (see :func:`repro.core.selection.selection_membership_batch`
for the exactness argument) and reuse is counted with array ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.acquisition.bench import RngLike, make_rng
from repro.core.parameters import reuse_probability, reuse_probability_limit
from repro.core.selection import selection_membership_batch


@dataclass(frozen=True)
class ReuseEstimate:
    """Monte-Carlo estimate of P(zeta) next to the closed form."""

    alpha: float
    k: int
    m: int
    n2: int
    trials: int
    estimate: float
    closed_form: float
    standard_error: float

    @property
    def z_score(self) -> float:
        """How many standard errors the estimate sits from the formula."""
        if self.standard_error == 0:
            return 0.0
        return (self.estimate - self.closed_form) / self.standard_error


def estimate_reuse_probability(
    alpha: float = 10.0,
    k: int = 50,
    m: int = 20,
    trials: int = 2000,
    rng: RngLike = None,
    tracked_element: Optional[int] = None,
) -> ReuseEstimate:
    """Estimate P(zeta) for one tracked trace by direct simulation.

    Each trial draws ``m`` independent k-selections from ``n2 = alpha
    k m`` traces and checks whether the tracked element (default:
    element 0 — by symmetry any index gives the same probability)
    appears in two or more selections.  The whole ``trials x m`` batch
    of selections is drawn in a single vectorised RNG call and reuse is
    counted with array reductions — no Python trial loop.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    n2 = int(round(alpha * k * m))
    if n2 < k:
        raise ValueError("n2 must be at least k")
    element = 0 if tracked_element is None else tracked_element
    if not 0 <= element < n2:
        raise ValueError(f"tracked element {element} out of range [0, {n2})")
    generator = make_rng(rng)
    member = selection_membership_batch(n2, k, m, trials, generator, element)
    appearances = member.sum(axis=1)
    hits = int(np.count_nonzero(appearances >= 2))
    estimate = hits / trials
    closed_form = reuse_probability(alpha, m)
    standard_error = float(np.sqrt(max(estimate * (1 - estimate), 1e-12) / trials))
    return ReuseEstimate(
        alpha=alpha,
        k=k,
        m=m,
        n2=n2,
        trials=trials,
        estimate=estimate,
        closed_form=closed_form,
        standard_error=standard_error,
    )


def property_p1_numeric(m: int, alphas=(1, 10, 100, 1000, 10_000)) -> bool:
    """P1: f_alpha(m) decreases to 0 as alpha grows."""
    values = [reuse_probability(alpha, m) for alpha in alphas]
    decreasing = all(b <= a for a, b in zip(values, values[1:]))
    vanishes = values[-1] < 1e-3
    return decreasing and vanishes


def property_p2_numeric(
    alpha: float, rel_tol: float = 1e-3, m_large: int = 100_000
) -> bool:
    """P2: f_alpha(m) approaches 1 - ((alpha+1)/alpha) e^{-1/alpha}."""
    limit = reuse_probability_limit(alpha)
    value = reuse_probability(alpha, m_large)
    if limit == 0:
        return abs(value) < rel_tol
    return abs(value - limit) <= rel_tol * limit
