"""Setuptools shim.

All metadata lives in pyproject.toml.  This file exists so that
``pip install -e . --no-use-pep517`` (the legacy editable path) works
in offline environments that lack the ``wheel`` package, which the
PEP 660 editable build of older setuptools requires.
"""

from setuptools import setup

setup()
